// Package recline implements coordinated cross-VM checkpointing and
// recovery-line computation for a distributed log set.
//
// The protocol is a counter-barrier: each member VM, at a thread-quiescent
// point of its round structure, enters one checkpoint critical event and —
// still inside its GC-critical section — arrives at the group barrier with
// the event's counter value as its anchor. When every live member has
// arrived, the round completes: each member appends its local checkpoint
// record followed by a GroupEpochEntry naming the epoch id and the full
// member list with every member's anchor counter, then fsyncs its WAL before
// releasing the critical section. A completed epoch is therefore durable on
// every member, and every member's trace carries an identical copy of the
// recovery line — a salvageable subset of the set names its own lines.
//
// The recovery-line solver (Solve) walks the stamped epochs newest-first and
// picks the latest *complete* line: an epoch is complete only if every listed
// member's log still carries both the epoch stamp and a checkpoint at exactly
// that member's anchor counter (a torn WAL tail silently drops either, which
// is precisely how a crash demotes the line). Cross-VM messages are then
// classified against the line — stable (sent and received before it),
// in-flight (sent before, received after: replay re-delivers them from the
// receiver's own recorded stream/datagram records), or orphaned (received
// before, sent after: the receiver's checkpoint depends on state the sender
// would roll back, so the epoch is rejected and the previous complete line
// wins). Coordinated barriers never produce orphans; the rule is the safety
// net for hand-built or partially coordinated sets.
package recline

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/tracelog"
)

// Coordinator runs the counter-barrier protocol for one group of recording
// VMs. Members are fixed at construction; a crashed member is excluded with
// Remove, which also completes the round its survivors are parked in.
type Coordinator struct {
	mu   sync.Mutex
	cond *sync.Cond

	members map[ids.DJVMID]bool // live membership
	waiting map[ids.DJVMID]bool // members parked in the current barrier
	arrived map[ids.DJVMID]ids.GCount
	gen     uint64 // barrier generation, bumped when a round completes
	epoch   uint64 // completed epochs

	// Completed-round results keyed by the generation they closed, so a
	// waiter slow to wake still reads its own round's line even if a later
	// round completes first. Pruned to the last few generations.
	results map[uint64]roundResult
}

type roundResult struct {
	epoch uint64
	line  []tracelog.GroupMember
}

// NewCoordinator creates a coordinator for the given member VMs.
func NewCoordinator(members ...ids.DJVMID) *Coordinator {
	c := &Coordinator{
		members: make(map[ids.DJVMID]bool, len(members)),
		waiting: make(map[ids.DJVMID]bool),
		arrived: make(map[ids.DJVMID]ids.GCount),
		results: make(map[uint64]roundResult),
	}
	c.cond = sync.NewCond(&c.mu)
	for _, m := range members {
		c.members[m] = true
	}
	return c
}

// Checkpoint takes one coordinated group checkpoint on thread t. In record
// mode it is one critical event: the member arrives at the barrier inside its
// GC-critical section with the event's counter as its anchor, blocks until
// every live member has arrived, then appends its checkpoint record and the
// epoch stamp and fsyncs its WAL. In replay mode it consumes the event's
// schedule slot without coordinating (a recovered member replays alone from
// its own log). Outside record and replay it is a no-op.
//
// Call it at a thread-quiescent point, like checkpoint.Take: the caller must
// be the only thread of its VM with critical events still to execute.
func (c *Coordinator) Checkpoint(t *core.Thread, save func() []byte) {
	vm := t.VM()
	switch vm.Mode() {
	case ids.Replay:
		t.CriticalKind(obs.KindCheckpoint, func(ids.GCount) {})
		return
	case ids.Record:
	default:
		return
	}
	t.CriticalKind(obs.KindCheckpoint, func(gc ids.GCount) {
		epoch, line := c.arrive(vm.ID(), gc)
		logs := vm.Logs()
		logs.Schedule.Append(&tracelog.CheckpointEntry{
			GC:           gc,
			NextThread:   uint32(vm.NextThreadNum()),
			TakerThread:  t.Num(),
			MainEventNum: t.CurrentEventNum(),
			State:        save(),
		})
		if line != nil {
			// The stamp follows its anchor in the WAL, so a salvaged stamp
			// implies a salvaged anchor on the same member.
			logs.Schedule.Append(&tracelog.GroupEpochEntry{Epoch: epoch, GC: gc, Members: line})
			vm.Metrics().IncGroupEpoch()
		}
		// Durability point: once every member passes here, the epoch is a
		// complete recovery line no later crash can lose.
		logs.SyncWAL()
	})
}

// arrive registers the member's anchor and blocks until the round completes
// (every live member arrived, or enough were Removed). It returns the
// completed epoch id and line, or (0, nil) when the VM is not a live member.
func (c *Coordinator) arrive(vm ids.DJVMID, gc ids.GCount) (uint64, []tracelog.GroupMember) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.members[vm] {
		return 0, nil
	}
	c.arrived[vm] = gc
	myGen := c.gen
	if c.roundCompleteLocked() {
		c.completeRoundLocked()
	} else {
		c.waiting[vm] = true
		for c.gen == myGen {
			c.cond.Wait()
		}
		delete(c.waiting, vm)
	}
	r := c.results[myGen]
	return r.epoch, r.line
}

// roundCompleteLocked reports whether every live member has arrived.
func (c *Coordinator) roundCompleteLocked() bool {
	if len(c.members) == 0 || len(c.arrived) == 0 {
		return false
	}
	for m := range c.members {
		if _, ok := c.arrived[m]; !ok {
			return false
		}
	}
	return true
}

// completeRoundLocked closes the round: assigns the epoch id, snapshots the
// line from the arrivals, and releases the waiters.
func (c *Coordinator) completeRoundLocked() {
	c.epoch++
	line := make([]tracelog.GroupMember, 0, len(c.arrived))
	for vm, gc := range c.arrived {
		line = append(line, tracelog.GroupMember{VM: vm, AnchorGC: gc})
	}
	sort.Slice(line, func(i, j int) bool { return line[i].VM < line[j].VM })
	c.results[c.gen] = roundResult{epoch: c.epoch, line: line}
	if c.gen >= 4 {
		delete(c.results, c.gen-4)
	}
	c.arrived = make(map[ids.DJVMID]ids.GCount)
	c.gen++
	c.cond.Broadcast()
}

// Remove excludes a crashed member from the group: future rounds no longer
// wait for it, and if the remaining members are all parked at the barrier the
// round completes without it. The group supervisor calls this after
// fail-stop detection so survivors keep running.
func (c *Coordinator) Remove(vm ids.DJVMID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.members[vm] {
		return
	}
	delete(c.members, vm)
	delete(c.arrived, vm)
	if c.roundCompleteLocked() {
		c.completeRoundLocked()
	}
}

// Waiting reports the members currently parked inside the barrier. A parked
// member's counter is frozen but the member is alive — the group supervisor
// must not declare it crashed.
func (c *Coordinator) Waiting() map[ids.DJVMID]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[ids.DJVMID]bool, len(c.waiting))
	for vm := range c.waiting {
		out[vm] = true
	}
	return out
}

// Epochs reports how many rounds have completed.
func (c *Coordinator) Epochs() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}
