package recline

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/tracelog"
)

// --- Coordinator ---------------------------------------------------------

// A full round: every member arrives, everyone observes the same epoch id and
// the same sorted line; a second round bumps the epoch.
func TestCoordinatorRounds(t *testing.T) {
	c := NewCoordinator(1, 2, 3)
	for round := 1; round <= 2; round++ {
		var wg sync.WaitGroup
		epochs := make([]uint64, 3)
		lines := make([][]tracelog.GroupMember, 3)
		for i := 0; i < 3; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				epochs[i], lines[i] = c.arrive(ids.DJVMID(i+1), ids.GCount(100*round+i))
			}()
		}
		wg.Wait()
		for i := 0; i < 3; i++ {
			if epochs[i] != uint64(round) {
				t.Fatalf("round %d: member %d saw epoch %d", round, i+1, epochs[i])
			}
			if len(lines[i]) != 3 {
				t.Fatalf("round %d: member %d saw %d-member line", round, i+1, len(lines[i]))
			}
			for j, m := range lines[i] {
				want := tracelog.GroupMember{VM: ids.DJVMID(j + 1), AnchorGC: ids.GCount(100*round + j)}
				if m != want {
					t.Fatalf("round %d: member %d line[%d] = %+v, want %+v", round, i+1, j, m, want)
				}
			}
		}
	}
	if got := c.Epochs(); got != 2 {
		t.Fatalf("Epochs() = %d, want 2", got)
	}
}

// Removing a dead member completes the round its survivors are parked in, and
// the completed line names only the survivors.
func TestCoordinatorRemoveCompletesParkedRound(t *testing.T) {
	c := NewCoordinator(1, 2, 3)
	type res struct {
		epoch uint64
		line  []tracelog.GroupMember
	}
	done := make(chan res, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			e, l := c.arrive(ids.DJVMID(i+1), ids.GCount(50+i))
			done <- res{e, l}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(c.Waiting()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("survivors never parked: waiting=%v", c.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	c.Remove(3) // member 3 crashed without arriving
	for i := 0; i < 2; i++ {
		r := <-done
		if r.epoch != 1 {
			t.Fatalf("epoch = %d, want 1", r.epoch)
		}
		if len(r.line) != 2 || r.line[0].VM != 1 || r.line[1].VM != 2 {
			t.Fatalf("line = %+v, want survivors {1,2}", r.line)
		}
	}
	if w := c.Waiting(); len(w) != 0 {
		t.Fatalf("members still parked after release: %v", w)
	}
	// The next round no longer waits for the removed member.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if e, _ := c.arrive(ids.DJVMID(i+1), ids.GCount(80+i)); e != 2 {
				t.Errorf("post-remove round: epoch %d, want 2", e)
			}
		}()
	}
	wg.Wait()
}

// --- Solver --------------------------------------------------------------

// synthSet builds one member's in-memory log set: identity meta first, then
// the given schedule and datagram records.
func synthSet(vm ids.DJVMID, sched, dg []tracelog.Entry) *tracelog.Set {
	s := tracelog.NewSet()
	s.Schedule.Append(&tracelog.VMMeta{VM: vm, World: ids.OpenWorld, Threads: 1, FinalGC: 1000})
	for _, e := range sched {
		s.Schedule.Append(e)
	}
	for _, e := range dg {
		s.Datagram.Append(e)
	}
	return s
}

// epochSched is one member's checkpoint + stamp pair for an epoch.
func epochSched(epoch uint64, anchor ids.GCount, members []tracelog.GroupMember) []tracelog.Entry {
	return []tracelog.Entry{
		&tracelog.CheckpointEntry{GC: anchor},
		&tracelog.GroupEpochEntry{Epoch: epoch, GC: anchor, Members: members},
	}
}

var (
	line1 = []tracelog.GroupMember{{VM: 1, AnchorGC: 90}, {VM: 2, AnchorGC: 95}, {VM: 3, AnchorGC: 92}}
	line2 = []tracelog.GroupMember{{VM: 1, AnchorGC: 180}, {VM: 2, AnchorGC: 185}, {VM: 3, AnchorGC: 182}}
)

// fullMember builds member vm's schedule carrying both epochs complete.
func fullMember(vm ids.DJVMID) []tracelog.Entry {
	anchor := func(l []tracelog.GroupMember) ids.GCount {
		for _, m := range l {
			if m.VM == vm {
				return m.AnchorGC
			}
		}
		return 0
	}
	return append(epochSched(1, anchor(line1), line1), epochSched(2, anchor(line2), line2)...)
}

func TestSolveLatestCompleteLine(t *testing.T) {
	sol, err := Solve([]*tracelog.Set{
		synthSet(1, fullMember(1), nil),
		synthSet(2, fullMember(2), nil),
		synthSet(3, fullMember(3), nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Line == nil || sol.Line.Epoch != 2 {
		t.Fatalf("line = %+v, want epoch 2", sol.Line)
	}
	for _, m := range line2 {
		if sol.Line.Anchors[m.VM] != m.AnchorGC {
			t.Fatalf("anchor[%d] = %d, want %d", m.VM, sol.Line.Anchors[m.VM], m.AnchorGC)
		}
	}
	if sol.Fallbacks() != 0 {
		t.Fatalf("fallbacks = %d, want 0 (candidates %+v)", sol.Fallbacks(), sol.Candidates)
	}
	if !sol.Candidates[0].Chosen {
		t.Fatalf("newest candidate not chosen: %+v", sol.Candidates)
	}
}

// A member whose epoch-2 stamp (or anchor checkpoint) was lost demotes epoch 2;
// the solver settles on the previous complete line.
func TestSolveAnchorLostFallsBack(t *testing.T) {
	cases := []struct {
		name string
		m3   []tracelog.Entry
	}{
		{
			// Stamp lost: the checkpoint at 182 survived but the epoch record
			// behind it did not.
			name: "stamp lost",
			m3: append(epochSched(1, 92, line1),
				&tracelog.CheckpointEntry{GC: 182}),
		},
		{
			// Anchor lost: the stamp survived but the checkpoint it anchors
			// did not (an impossible WAL order, but the solver must not trust
			// order).
			name: "checkpoint lost",
			m3: append(epochSched(1, 92, line1),
				&tracelog.GroupEpochEntry{Epoch: 2, GC: 182, Members: line2}),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sets := []*tracelog.Set{
				synthSet(1, fullMember(1), nil),
				synthSet(2, fullMember(2), nil),
				synthSet(3, tc.m3, nil),
			}
			sol, err := Solve(sets)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Line == nil || sol.Line.Epoch != 1 {
				t.Fatalf("line = %+v, want fallback to epoch 1", sol.Line)
			}
			if sol.Fallbacks() != 1 {
				t.Fatalf("fallbacks = %d, want 1", sol.Fallbacks())
			}
			c := sol.Candidates[0]
			if c.Epoch != 2 || !strings.Contains(c.Rejected, "anchor lost") {
				t.Fatalf("candidate = %+v, want epoch 2 rejected for a lost anchor", c)
			}
			if len(c.Missing) != 1 || c.Missing[0] != 3 {
				t.Fatalf("missing = %v, want [3]", c.Missing)
			}
		})
	}
}

// A member whose log is wholly absent demotes every epoch that lists it — no
// complete line survives and recovery degrades to per-member restarts.
func TestSolveAbsentMemberDemotesAllitsEpochs(t *testing.T) {
	sol, err := Solve([]*tracelog.Set{
		synthSet(1, fullMember(1), nil),
		synthSet(2, fullMember(2), nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Line != nil {
		t.Fatalf("line = %+v, want none (member 3 absent from both epochs)", sol.Line)
	}
	if sol.Fallbacks() != 2 {
		t.Fatalf("fallbacks = %d, want 2 (candidates %+v)", sol.Fallbacks(), sol.Candidates)
	}
	for _, c := range sol.Candidates {
		if len(c.Missing) != 1 || c.Missing[0] != 3 {
			t.Fatalf("candidate %+v, want missing [3]", c)
		}
	}
}

// Stamps for the same epoch that disagree about the membership demote it.
func TestSolveMemberListMismatch(t *testing.T) {
	other := []tracelog.GroupMember{{VM: 1, AnchorGC: 90}, {VM: 2, AnchorGC: 96}}
	sol, err := Solve([]*tracelog.Set{
		synthSet(1, epochSched(1, 90, line1[:2]), nil),
		synthSet(2, epochSched(1, 95, other), nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Line != nil {
		t.Fatalf("line = %+v, want none", sol.Line)
	}
	if len(sol.Candidates) != 1 || !strings.Contains(sol.Candidates[0].Rejected, "disagree") {
		t.Fatalf("candidates = %+v, want a member-list disagreement", sol.Candidates)
	}
}

// dgMsg records one cross-VM datagram in the receiver's log.
func dgMsg(ev ids.EventNum, sender ids.DJVMID, senderGC, recvGC ids.GCount) tracelog.Entry {
	return &tracelog.DatagramRecvEntry{
		EventID:    ids.NetworkEventID{Thread: 1, Event: ev},
		ReceiverGC: recvGC,
		Datagram:   ids.DGNetworkEventID{VM: sender, GC: senderGC},
	}
}

// Messages classify against the chosen line: sent and received before it are
// stable, sent before and received after are in-flight.
func TestSolveClassifiesMessages(t *testing.T) {
	sol, err := Solve([]*tracelog.Set{
		synthSet(1, fullMember(1), nil),
		synthSet(2, fullMember(2), []tracelog.Entry{
			dgMsg(1, 1, 100, 120), // stable under epoch 2
			dgMsg(2, 1, 170, 200), // in-flight: sent ≤180, received >185
		}),
		synthSet(3, fullMember(3), nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Line == nil || sol.Line.Epoch != 2 {
		t.Fatalf("line = %+v, want epoch 2", sol.Line)
	}
	if sol.Stable != 1 || sol.InFlight != 1 || sol.Post != 0 {
		t.Fatalf("classes stable=%d inflight=%d post=%d, want 1/1/0 (%+v)",
			sol.Stable, sol.InFlight, sol.Post, sol.Messages)
	}
}

// An orphaned message — received before the line but sent after it — rejects
// the epoch even though every anchor survived.
func TestSolveOrphanRejectsEpoch(t *testing.T) {
	sol, err := Solve([]*tracelog.Set{
		synthSet(1, fullMember(1), nil),
		synthSet(2, fullMember(2), nil),
		// Member 3 received at 150 (≤182) a datagram member 2 sent at 190
		// (>185): member 3's epoch-2 checkpoint depends on state member 2
		// would roll back.
		synthSet(3, fullMember(3), []tracelog.Entry{
			dgMsg(1, 2, 190, 150),
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Line == nil || sol.Line.Epoch != 1 {
		t.Fatalf("line = %+v, want fallback to epoch 1", sol.Line)
	}
	c := sol.Candidates[0]
	if c.Epoch != 2 || c.Orphans != 1 || !strings.Contains(c.Rejected, "orphan") {
		t.Fatalf("candidate = %+v, want epoch 2 rejected for 1 orphan", c)
	}
	// Under epoch 1 the same message is post-line on both ends.
	if sol.Post != 1 || sol.Stable != 0 || sol.InFlight != 0 {
		t.Fatalf("classes stable=%d inflight=%d post=%d, want 0/0/1", sol.Stable, sol.InFlight, sol.Post)
	}
}

// --- Torn-anchor fallback through real WALs ------------------------------

// A crash that tears a member's WAL mid-frame loses its latest epoch stamp;
// salvage plus solve must fall back to the previous complete line — the
// end-to-end durability contract of the coordinated checkpoint protocol.
func TestTornEpochAnchorFallsBackThroughWAL(t *testing.T) {
	dir := t.TempDir()
	pair1 := []tracelog.GroupMember{{VM: 1, AnchorGC: 90}, {VM: 2, AnchorGC: 95}}
	pair2 := []tracelog.GroupMember{{VM: 1, AnchorGC: 180}, {VM: 2, AnchorGC: 185}}
	build := func(name string, vm ids.DJVMID, a1, a2 ids.GCount) string {
		path := filepath.Join(dir, name)
		s := tracelog.NewSet()
		w, err := tracelog.CreateWAL(path, tracelog.WALOptions{SyncEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AttachWAL(w); err != nil {
			t.Fatal(err)
		}
		s.Schedule.Append(&tracelog.VMMeta{VM: vm, World: ids.OpenWorld}) // identity header
		s.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 250})
		s.Schedule.Append(&tracelog.CheckpointEntry{GC: a1})
		s.Schedule.Append(&tracelog.GroupEpochEntry{Epoch: 1, GC: a1, Members: pair1})
		s.Schedule.Append(&tracelog.CheckpointEntry{GC: a2})
		s.Schedule.Append(&tracelog.GroupEpochEntry{Epoch: 2, GC: a2, Members: pair2})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	p1 := build("m1.wal", 1, 90, 180)
	p2 := build("m2.wal", 2, 95, 185)

	// Tear member 2's WAL five bytes into its final frame — the epoch-2 stamp.
	fi, err := os.Stat(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(p2, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	s1, _, err := tracelog.RecoverFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	s2, rep2, err := tracelog.RecoverFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Truncated {
		t.Fatalf("member 2's salvage did not report the torn tail: %+v", rep2)
	}

	sol, err := Solve([]*tracelog.Set{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Line == nil || sol.Line.Epoch != 1 {
		t.Fatalf("line = %+v, want fallback to epoch 1", sol.Line)
	}
	if got := sol.Line.Anchors; got[1] != 90 || got[2] != 95 {
		t.Fatalf("anchors = %v, want {1:90 2:95}", got)
	}
	if sol.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1 (candidates %+v)", sol.Fallbacks(), sol.Candidates)
	}
	c := sol.Candidates[0]
	if c.Epoch != 2 || len(c.Missing) != 1 || c.Missing[0] != 2 {
		t.Fatalf("candidate = %+v, want epoch 2 missing member 2", c)
	}
}
