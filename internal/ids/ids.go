// Package ids defines the identity and event-id model shared by every DJVM
// subsystem. It mirrors the identifiers of the paper "Deterministic Replay of
// Distributed Java Applications" (IPPS 2000):
//
//   - DJVMID: the unique identity assigned to each DJVM instance during the
//     record phase, logged and reused during replay (§4.1.3).
//   - ThreadNum: the creation-order number of a thread within one DJVM.
//     Because threads are created in the same order in the record and replay
//     phases, a thread has the same ThreadNum in both phases.
//   - EventNum: the per-thread sequence number of a network event. Events are
//     sequentially ordered within a thread, so the EventNum of a particular
//     network event is the same in record and replay.
//   - NetworkEventID ⟨threadNum, eventNum⟩: identifies a network event within
//     a DJVM.
//   - ConnectionID ⟨dJVMId, threadNum, eventNum⟩: identifies a connection
//     request generated at a connect network event. The paper uses
//     ⟨dJVMId, threadNum⟩; we additionally carry the connect's EventNum so
//     that two in-flight connections from the same thread are distinguishable
//     (see DESIGN.md §1, "Deliberate deviation").
//   - DGNetworkEventID ⟨dJVMId, dJVMgc⟩: identifies a UDP datagram by the
//     sender DJVM and the sender's global-counter value at the send event
//     (§4.2.2).
package ids

import "fmt"

// DJVMID is the unique identity of one DJVM instance. IDs are assigned by the
// network/config layer during the record phase and must be reused during the
// replay phase.
type DJVMID uint32

// ThreadNum is the creation-order index of a thread within a single DJVM.
// The main thread of a VM is thread 0.
type ThreadNum uint32

// EventNum is the per-thread sequence number of a network event.
type EventNum uint32

// GCount is a global-counter (logical clock) value within one DJVM. The
// counter ticks once per critical event, uniquely identifying each critical
// event of that VM (§2.2). It is global within a particular DJVM, not across
// the network.
type GCount uint64

// NetworkEventID identifies a network event within a specific DJVM as the
// tuple ⟨threadNum, eventNum⟩ (§4.1.3).
type NetworkEventID struct {
	Thread ThreadNum
	Event  EventNum
}

func (id NetworkEventID) String() string {
	return fmt.Sprintf("nev⟨t%d,e%d⟩", id.Thread, id.Event)
}

// ConnectionID identifies a connection request generated at a connect network
// event: the DJVM issuing the connect, the thread performing it, and the
// connect's per-thread event number.
type ConnectionID struct {
	VM     DJVMID
	Thread ThreadNum
	Event  EventNum
}

func (id ConnectionID) String() string {
	return fmt.Sprintf("conn⟨vm%d,t%d,e%d⟩", id.VM, id.Thread, id.Event)
}

// DGNetworkEventID uniquely identifies one application datagram as the pair
// ⟨sender DJVM id, sender global counter at the send event⟩ (§4.2.2).
type DGNetworkEventID struct {
	VM DJVMID
	GC GCount
}

func (id DGNetworkEventID) String() string {
	return fmt.Sprintf("dg⟨vm%d,gc%d⟩", id.VM, id.GC)
}

// World is the deployment configuration of a distributed application with
// respect to how many of its components run on DJVMs (§1, §5).
type World uint8

const (
	// ClosedWorld: all JVMs running the application are DJVMs. Network
	// interactions are replayed cooperatively via meta-data exchange and the
	// per-VM logs (§4).
	ClosedWorld World = iota
	// OpenWorld: only this JVM is a DJVM. Network events are handled as
	// general I/O: input contents are fully recorded and replay never touches
	// the real network (§5).
	OpenWorld
	// MixedWorld: some peers are DJVMs and some are not. Communication with
	// DJVM peers uses the closed-world scheme; communication with non-DJVM
	// peers records full state as in the open world (§5).
	MixedWorld
)

func (w World) String() string {
	switch w {
	case ClosedWorld:
		return "closed"
	case OpenWorld:
		return "open"
	case MixedWorld:
		return "mixed"
	default:
		return fmt.Sprintf("world(%d)", uint8(w))
	}
}

// ObjectID identifies one registered shared object (SharedInt, SharedVar,
// Monitor) within a single DJVM under sharded order recording. IDs are
// assigned in registration order by the owning VM; because applications must
// register objects in a deterministic order (see core.Config.OrderMode), an
// object has the same ObjectID in the record and replay phases, mirroring how
// ThreadNum survives across phases.
type ObjectID uint64

func (o ObjectID) String() string { return fmt.Sprintf("obj%d", uint64(o)) }

// AccessSeq is the per-object access sequence number under sharded order
// recording: it ticks once per critical event on one object, uniquely
// identifying each access of that object the way GCount identifies each
// critical event of a whole VM.
type AccessSeq uint64

// OrderMode selects how a DJVM totally orders critical events.
type OrderMode uint8

const (
	// OrderGlobal is the paper's scheme: one global counter per VM orders
	// every critical event, and replay enforces that single total order.
	OrderGlobal OrderMode = iota
	// OrderSharded records a per-object access order instead: each registered
	// shared object carries its own access counter, and replay enforces only
	// per-object FIFO order plus per-thread program order (the DOR/iReplayer
	// relaxation). Events without a registered object — network, environment,
	// thread lifecycle, checkpoints — still use the global counter.
	OrderSharded
)

func (m OrderMode) String() string {
	switch m {
	case OrderGlobal:
		return "global"
	case OrderSharded:
		return "sharded"
	default:
		return fmt.Sprintf("order(%d)", uint8(m))
	}
}

// Mode distinguishes the two execution modes of a DJVM (§1).
type Mode uint8

const (
	// Record mode: the tool records the logical thread schedule and the
	// network interaction information while the program runs.
	Record Mode = iota
	// Replay mode: the tool reproduces the execution behavior by enforcing
	// the recorded logical thread schedule and network interactions.
	Replay
	// Passthrough runs the application with no recording and no enforcement;
	// used as the baseline for overhead measurements (the "plain JVM").
	Passthrough
)

func (m Mode) String() string {
	switch m {
	case Record:
		return "record"
	case Replay:
		return "replay"
	case Passthrough:
		return "passthrough"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}
