package ids

import "testing"

func TestStringRenderings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{NetworkEventID{Thread: 3, Event: 7}.String(), "nev⟨t3,e7⟩"},
		{ConnectionID{VM: 1, Thread: 2, Event: 3}.String(), "conn⟨vm1,t2,e3⟩"},
		{DGNetworkEventID{VM: 4, GC: 99}.String(), "dg⟨vm4,gc99⟩"},
		{ClosedWorld.String(), "closed"},
		{OpenWorld.String(), "open"},
		{MixedWorld.String(), "mixed"},
		{World(9).String(), "world(9)"},
		{Record.String(), "record"},
		{Replay.String(), "replay"},
		{Passthrough.String(), "passthrough"},
		{Mode(9).String(), "mode(9)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestIDComparability(t *testing.T) {
	// The replay layers key maps by these identities; equality must be
	// structural.
	a := ConnectionID{VM: 1, Thread: 2, Event: 3}
	b := ConnectionID{VM: 1, Thread: 2, Event: 3}
	if a != b {
		t.Error("identical ConnectionIDs not equal")
	}
	if (NetworkEventID{Thread: 1, Event: 2}) == (NetworkEventID{Thread: 2, Event: 1}) {
		t.Error("distinct NetworkEventIDs equal")
	}
	if (DGNetworkEventID{VM: 1, GC: 2}) == (DGNetworkEventID{VM: 2, GC: 1}) {
		t.Error("distinct DGNetworkEventIDs equal")
	}
}
