// Package checkpoint implements the paper's stated future work: "integrating
// the system with checkpointing to bound the replay time" (§8, citing [10]).
//
// A checkpoint is a consistent local snapshot taken as one critical event:
// because the GC-critical section serializes all critical events of a DJVM,
// application state captured inside it is consistent with the global counter
// value stamped on the checkpoint. Replay can then resume from the latest
// checkpoint instead of the beginning: the VM's counter starts one past the
// checkpoint event, every thread's logical-schedule cursor is fast-forwarded,
// and the application restores its snapshot before executing further
// critical events.
//
// Scope: a checkpoint must be taken at a thread-quiescent point — while the
// checkpointing thread is the only thread with critical events still to
// execute, and with no network data in flight. The demo application in
// examples/ and the tests structure their phases around such barriers, as
// coordinated checkpointing protocols do.
package checkpoint

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/tracelog"
)

// ErrNoCheckpoint is returned when a log set contains no checkpoint.
var ErrNoCheckpoint = errors.New("checkpoint: no checkpoint recorded")

// Snapshot is one recorded checkpoint.
type Snapshot struct {
	// GC is the counter value of the checkpoint critical event.
	GC ids.GCount
	// Resume is the replay configuration that picks up right after it.
	Resume core.ResumePoint
	// Data is the application state captured by Take.
	Data []byte
}

// Take records a checkpoint as one critical event of thread t, capturing the
// application state returned by save. It is a no-op returning nil data
// outside record mode (so application code can call it unconditionally; the
// resumed replay run must not re-take skipped checkpoints).
func Take(t *core.Thread, save func() []byte) {
	vm := t.VM()
	if vm.Mode() == ids.Replay {
		// The record-phase checkpoint was a critical event; replay must
		// consume its schedule slot to stay aligned, but captures nothing.
		t.CriticalKind(obs.KindCheckpoint, func(ids.GCount) {})
		return
	}
	if vm.Mode() != ids.Record {
		return
	}
	t.CriticalKind(obs.KindCheckpoint, func(gc ids.GCount) {
		vm.Logs().Schedule.Append(&tracelog.CheckpointEntry{
			GC:           gc,
			NextThread:   uint32(vm.NextThreadNum()),
			TakerThread:  t.Num(),
			MainEventNum: t.CurrentEventNum(),
			State:        save(),
		})
	})
}

// List returns every checkpoint in a recorded log set, in counter order.
func List(logs *tracelog.Set) ([]*Snapshot, error) {
	idx, err := tracelog.BuildScheduleIndex(logs.Schedule)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	out := make([]*Snapshot, len(idx.Checkpoints))
	for i, cp := range idx.Checkpoints {
		out[i] = &Snapshot{
			GC: cp.GC,
			Resume: core.ResumePoint{
				GC:           cp.GC + 1, // the checkpoint event itself is not re-executed
				NextThread:   ids.ThreadNum(cp.NextThread),
				MainThread:   cp.TakerThread,
				MainEventNum: cp.MainEventNum,
			},
			Data: cp.State,
		}
	}
	return out, nil
}

// At returns the checkpoint anchored at exactly the given counter, or
// ErrNoCheckpoint when the set retains none there. Group recovery restarts a
// member from its recovery-line anchor, which is a specific checkpoint, not
// necessarily the latest one the salvage retained.
func At(logs *tracelog.Set, gc ids.GCount) (*Snapshot, error) {
	all, err := List(logs)
	if err != nil {
		return nil, err
	}
	for _, s := range all {
		if s.GC == gc {
			return s, nil
		}
	}
	return nil, ErrNoCheckpoint
}

// Latest returns the most recent checkpoint in a recorded log set.
func Latest(logs *tracelog.Set) (*Snapshot, error) {
	all, err := List(logs)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, ErrNoCheckpoint
	}
	return all[len(all)-1], nil
}

// ResumeConfig builds the replay configuration that resumes from snap.
func ResumeConfig(base core.Config, logs *tracelog.Set, snap *Snapshot) core.Config {
	base.Mode = ids.Replay
	base.ReplayLogs = logs
	base.Resume = &snap.Resume
	return base
}
