package checkpoint

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/tracelog"
)

// phasedApp runs nPhases phases; each phase spawns workers that race on a
// shared counter, joins them, and checkpoints the phase number plus counter.
// With fromPhase > 0 the app resumes mid-run (restoring state instead of
// recomputing), as a resumed replay does.
func phasedApp(vm *core.VM, nPhases, fromPhase int, startCounter int64, trace *[]int64) {
	var counter core.SharedInt
	vm.Start(func(main *core.Thread) {
		if fromPhase > 0 {
			// Checkpoint restoration happens outside the recorded schedule.
			counter.Restore(startCounter)
		}
		for phase := fromPhase; phase < nPhases; phase++ {
			done := make(chan struct{}, 4)
			for w := 0; w < 4; w++ {
				main.Spawn(func(th *core.Thread) {
					defer func() { done <- struct{}{} }()
					for i := 0; i < 25; i++ {
						v := counter.Get(th)
						counter.Set(th, v+1) // racy increment
					}
				})
			}
			for w := 0; w < 4; w++ {
				<-done
			}
			snap := counter.Get(main)
			*trace = append(*trace, snap)
			phase := phase
			Take(main, func() []byte {
				buf := make([]byte, 12)
				binary.BigEndian.PutUint32(buf[0:4], uint32(phase+1))
				binary.BigEndian.PutUint64(buf[4:12], uint64(snap))
				return buf
			})
		}
	})
	vm.Wait()
	vm.Close()
}

func TestCheckpointResumeReplaysTail(t *testing.T) {
	const nPhases = 5

	recVM, err := core.NewVM(core.Config{ID: 77, Mode: ids.Record})
	if err != nil {
		t.Fatal(err)
	}
	var recTrace []int64
	phasedApp(recVM, nPhases, 0, 0, &recTrace)
	if len(recTrace) != nPhases {
		t.Fatalf("record traced %d phases, want %d", len(recTrace), nPhases)
	}

	snap, err := Latest(recVM.Logs())
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	fromPhase := int(binary.BigEndian.Uint32(snap.Data[0:4]))
	savedCounter := int64(binary.BigEndian.Uint64(snap.Data[4:12]))
	if fromPhase != nPhases {
		t.Fatalf("latest checkpoint at phase %d, want %d", fromPhase, nPhases)
	}

	// Resume from the second checkpoint instead, so there is a tail to
	// replay.
	idx, err := tracelog.BuildScheduleIndex(recVM.Logs().Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Checkpoints) != nPhases {
		t.Fatalf("%d checkpoints recorded, want %d", len(idx.Checkpoints), nPhases)
	}
	second := idx.Checkpoints[1]
	resume := &Snapshot{
		GC: second.GC,
		Resume: core.ResumePoint{
			GC:           second.GC + 1,
			NextThread:   ids.ThreadNum(second.NextThread),
			MainThread:   second.TakerThread,
			MainEventNum: second.MainEventNum,
		},
		Data: second.State,
	}
	resumePhase := int(binary.BigEndian.Uint32(resume.Data[0:4]))
	resumeCounter := int64(binary.BigEndian.Uint64(resume.Data[4:12]))
	if resumePhase != 2 {
		t.Fatalf("second checkpoint is for phase %d, want 2", resumePhase)
	}

	repVM, err := core.NewVM(ResumeConfig(core.Config{ID: 77}, recVM.Logs(), resume))
	if err != nil {
		t.Fatal(err)
	}
	var repTrace []int64
	phasedApp(repVM, nPhases, resumePhase, resumeCounter, &repTrace)

	// The resumed replay recomputes phases 2..4 and must land on the same
	// per-phase counters the record phase observed.
	want := recTrace[resumePhase:]
	if len(repTrace) != len(want) {
		t.Fatalf("resumed replay traced %d phases, want %d", len(repTrace), len(want))
	}
	for i := range want {
		if repTrace[i] != want[i] {
			t.Errorf("resumed phase %d counter %d, record %d", resumePhase+i, repTrace[i], want[i])
		}
	}
	_ = savedCounter

	// The observability layer accounts for the recorded events the resume
	// skipped: everything before the checkpoint's counter was fast-forwarded,
	// not executed.
	s := repVM.Metrics().Snapshot()
	if s.FastForwardSkips == 0 {
		t.Error("resumed replay reported no fast-forward skips")
	}
	if s.FastForwardSkips+s.TotalEvents < uint64(second.GC) {
		t.Errorf("skipped %d + executed %d events cannot cover the %d pre-checkpoint events",
			s.FastForwardSkips, s.TotalEvents, second.GC)
	}
	if s.Events.Checkpoint == 0 {
		t.Error("replayed tail contains checkpoints but none were counted")
	}
}

func TestLatestWithoutCheckpoint(t *testing.T) {
	vm, err := core.NewVM(core.Config{ID: 78, Mode: ids.Record})
	if err != nil {
		t.Fatal(err)
	}
	vm.Start(func(*core.Thread) {})
	vm.Wait()
	vm.Close()
	if _, err := Latest(vm.Logs()); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("Latest = %v, want ErrNoCheckpoint", err)
	}
}

func TestTakeIsNoOpOutsideRecord(t *testing.T) {
	vm, err := core.NewVM(core.Config{ID: 79, Mode: ids.Passthrough})
	if err != nil {
		t.Fatal(err)
	}
	called := false
	vm.Start(func(main *core.Thread) {
		Take(main, func() []byte { called = true; return nil })
	})
	vm.Wait()
	vm.Close()
	if called {
		t.Error("Take captured state outside record mode")
	}
}
