package logcheck

import (
	"strings"
	"testing"

	"repro/internal/ids"
	"repro/internal/tracelog"
)

func simpleSet(finalGC ids.GCount) *tracelog.Set {
	s := tracelog.NewSet()
	s.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 2, FinalGC: finalGC})
	s.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 3})
	s.Schedule.Append(&tracelog.Interval{Thread: 1, First: 4, Last: finalGC - 1})
	s.Network.Append(&tracelog.ReadEntry{EventID: ids.NetworkEventID{Thread: 0, Event: 0}, N: 7})
	return s
}

func TestDiffIdenticalSets(t *testing.T) {
	a, b := simpleSet(10), simpleSet(10)
	rep, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Same() {
		t.Errorf("identical sets reported different: %v", rep.Lines)
	}
}

func diffContains(rep *DiffReport, substr string) bool {
	for _, l := range rep.Lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func TestDiffScheduleDeparture(t *testing.T) {
	a, b := simpleSet(10), tracelog.NewSet()
	b.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 2, FinalGC: 10})
	b.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 5}) // differs
	b.Schedule.Append(&tracelog.Interval{Thread: 1, First: 6, Last: 9})
	b.Network.Append(&tracelog.ReadEntry{EventID: ids.NetworkEventID{Thread: 0, Event: 0}, N: 7})

	rep, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !diffContains(rep, "thread 0: schedules depart at interval 0") {
		t.Errorf("schedule departure not reported: %v", rep.Lines)
	}
}

func TestDiffNetworkValueAndPresence(t *testing.T) {
	a, b := simpleSet(10), simpleSet(10)
	// Differing value.
	b.Network.Append(&tracelog.ReadEntry{EventID: ids.NetworkEventID{Thread: 1, Event: 0}, N: 9})
	a.Network.Append(&tracelog.ReadEntry{EventID: ids.NetworkEventID{Thread: 1, Event: 0}, N: 5})
	// One-sided entry.
	a.Network.Append(&tracelog.BindEntry{EventID: ids.NetworkEventID{Thread: 0, Event: 1}, Port: 80})

	rep, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !diffContains(rep, "read nev⟨t1,e0⟩: values differ") {
		t.Errorf("value difference not reported: %v", rep.Lines)
	}
	if !diffContains(rep, "bind nev⟨t0,e1⟩: only in left log") {
		t.Errorf("one-sided bind not reported: %v", rep.Lines)
	}
}

func TestDiffMetaDifferences(t *testing.T) {
	a := simpleSet(10)
	b := tracelog.NewSet()
	b.Schedule.Append(&tracelog.VMMeta{VM: 2, Threads: 3, FinalGC: 12})
	b.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 11})

	rep, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"vm id: 1 vs 2", "thread count: 2 vs 3", "final counter: 10 vs 12"} {
		if !diffContains(rep, want) {
			t.Errorf("missing %q in %v", want, rep.Lines)
		}
	}
}

func TestDiffDatagram(t *testing.T) {
	a, b := simpleSet(10), simpleSet(10)
	a.Datagram.Append(&tracelog.DatagramRecvEntry{
		EventID:  ids.NetworkEventID{Thread: 1, Event: 0},
		Datagram: ids.DGNetworkEventID{VM: 5, GC: 1},
	})
	b.Datagram.Append(&tracelog.DatagramRecvEntry{
		EventID:  ids.NetworkEventID{Thread: 1, Event: 0},
		Datagram: ids.DGNetworkEventID{VM: 5, GC: 2},
	})
	rep, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !diffContains(rep, "datagram-recv nev⟨t1,e0⟩: values differ") {
		t.Errorf("datagram difference not reported: %v", rep.Lines)
	}
}

func TestDiffTwoRealRecordings(t *testing.T) {
	// Two record runs of the same racy program almost surely interleave
	// differently; Diff must find a schedule departure but no network-key
	// asymmetry (both runs perform the same events).
	s1, c1 := recordWorld(t)
	s2, c2 := recordWorld(t)
	_ = c1
	_ = c2
	rep, err := Diff(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if diffContains(rep, "only in") {
		t.Errorf("two runs of one program have asymmetric event keys: %v", rep.Lines)
	}
	// Schedules usually differ, but equality is possible; no assertion.
}
