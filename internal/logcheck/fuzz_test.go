package logcheck

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/tracelog"
)

// FuzzCheckSet hardens the log validator against arbitrary schedule bytes.
// The explorer feeds CheckSet synthesized schedules (tracelog.ComposeSchedule
// output) before replaying them, so the seed corpus leans on composed logs:
// a preemption-heavy global order, a sharded order with interleaved object
// runs, and mutated/truncated variants of each. Whatever the input, CheckSet
// must return a report (possibly full of findings), never panic, and must be
// deterministic.
func FuzzCheckSet(f *testing.F) {
	meta := tracelog.VMMeta{VM: 1, World: ids.ClosedWorld, Threads: 3}

	// A composed global schedule with preemptions on every other step — the
	// shape the explorer's bounded-preemption search emits.
	preempted := tracelog.ComposeSchedule(meta, ids.OrderGlobal, 0,
		[]ids.ThreadNum{0, 1, 0, 2, 1, 0, 2, 1, 0}, nil, nil)
	f.Add(preempted.Bytes())

	// A composed sharded schedule: short global order (network/thread events)
	// plus interleaved per-object access runs.
	sharded := tracelog.ComposeSchedule(meta, ids.OrderSharded, 0,
		[]ids.ThreadNum{0, 0, 1, 2, 0},
		map[ids.ObjectID][]ids.ThreadNum{
			0: {1, 2, 1, 1, 2},
			1: {2, 2, 1},
		}, nil)
	f.Add(sharded.Bytes())

	// A composed schedule resuming from a checkpoint base, with extras the
	// composer passes through verbatim.
	truncated := tracelog.ComposeSchedule(meta, ids.OrderGlobal, 40,
		[]ids.ThreadNum{1, 1, 2, 0},
		nil,
		[]tracelog.Entry{&tracelog.Notify{GC: 41, Woken: []ids.ThreadNum{2}}})
	f.Add(truncated.Bytes())

	// Characteristic corruptions: truncations and bit flips of the composed
	// logs, plus degenerate inputs.
	pb := preempted.Bytes()
	f.Add(pb[:len(pb)/2])
	sb := sharded.Bytes()
	f.Add(sb[:len(sb)-3])
	mut := append([]byte(nil), pb...)
	mut[len(mut)/2] ^= 0x41
	f.Add(mut)
	f.Add([]byte{})
	f.Add([]byte{0x07, 0x00, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Logs reach the checker through the decoder; inputs the decoder
		// rejects never make it to CheckSet.
		entries, err := tracelog.Parse(data)
		if err != nil {
			return
		}
		lg := tracelog.NewLog()
		for _, e := range entries {
			lg.Append(e)
		}
		set := tracelog.NewSet()
		set.Schedule = lg
		rep := CheckSet(set)
		if rep == nil {
			t.Fatal("CheckSet returned nil report")
		}
		rep2 := CheckSet(set)
		if rep2 == nil || (rep.OK() != rep2.OK()) || len(rep.Findings) != len(rep2.Findings) {
			t.Fatal("CheckSet is not deterministic")
		}
	})
}
