package logcheck

import (
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/tracelog"
)

// DiffReport lists the differences between two log sets, most significant
// first, capped so a wildly different pair stays readable.
type DiffReport struct {
	Lines []string
}

// Same reports whether no differences were found.
func (d *DiffReport) Same() bool { return len(d.Lines) == 0 }

const diffCap = 50

func (d *DiffReport) addf(format string, args ...any) {
	if len(d.Lines) < diffCap {
		d.Lines = append(d.Lines, fmt.Sprintf(format, args...))
	}
}

// Diff compares two recorded log sets — two recordings of "the same"
// program, or a recording against a re-recording after a fix — and reports
// where their schedules and network interactions depart. The first schedule
// difference is usually the root interleaving change; everything after it
// tends to be fallout.
func Diff(a, b *tracelog.Set) (*DiffReport, error) {
	rep := &DiffReport{}
	sa, err := tracelog.BuildScheduleIndex(a.Schedule)
	if err != nil {
		return nil, fmt.Errorf("logcheck: diff: left schedule: %w", err)
	}
	sb, err := tracelog.BuildScheduleIndex(b.Schedule)
	if err != nil {
		return nil, fmt.Errorf("logcheck: diff: right schedule: %w", err)
	}

	if sa.Meta.VM != sb.Meta.VM {
		rep.addf("vm id: %d vs %d", sa.Meta.VM, sb.Meta.VM)
	}
	if sa.Meta.World != sb.Meta.World {
		rep.addf("world: %v vs %v", sa.Meta.World, sb.Meta.World)
	}
	if sa.Meta.Threads != sb.Meta.Threads {
		rep.addf("thread count: %d vs %d", sa.Meta.Threads, sb.Meta.Threads)
	}
	if sa.Meta.FinalGC != sb.Meta.FinalGC {
		rep.addf("final counter: %d vs %d", sa.Meta.FinalGC, sb.Meta.FinalGC)
	}

	diffSchedules(rep, sa, sb)
	if err := diffNetwork(rep, a, b); err != nil {
		return nil, err
	}
	if err := diffDatagram(rep, a, b); err != nil {
		return nil, err
	}
	return rep, nil
}

// diffSchedules reports, per thread, the first interval where the two
// logical schedules depart.
func diffSchedules(rep *DiffReport, a, b *tracelog.ScheduleIndex) {
	threads := map[ids.ThreadNum]bool{}
	for tn := range a.Intervals {
		threads[tn] = true
	}
	for tn := range b.Intervals {
		threads[tn] = true
	}
	ordered := make([]ids.ThreadNum, 0, len(threads))
	for tn := range threads {
		ordered = append(ordered, tn)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	for _, tn := range ordered {
		ia, ib := a.Intervals[tn], b.Intervals[tn]
		n := min(len(ia), len(ib))
		diverged := false
		for i := 0; i < n; i++ {
			if ia[i] != ib[i] {
				rep.addf("thread %d: schedules depart at interval %d: [%d,%d] vs [%d,%d]",
					tn, i, ia[i].First, ia[i].Last, ib[i].First, ib[i].Last)
				diverged = true
				break
			}
		}
		if !diverged && len(ia) != len(ib) {
			rep.addf("thread %d: %d vs %d schedule intervals (common prefix identical)",
				tn, len(ia), len(ib))
		}
	}
}

// diffNetwork compares the keyed network-log records.
func diffNetwork(rep *DiffReport, a, b *tracelog.Set) error {
	na, err := tracelog.BuildNetworkIndex(a.Network)
	if err != nil {
		return fmt.Errorf("logcheck: diff: left network log: %w", err)
	}
	nb, err := tracelog.BuildNetworkIndex(b.Network)
	if err != nil {
		return fmt.Errorf("logcheck: diff: right network log: %w", err)
	}

	diffKeyed(rep, "accept", keysOf(na.ServerSockets), keysOf(nb.ServerSockets), func(ev ids.NetworkEventID) bool {
		return na.ServerSockets[ev] == nb.ServerSockets[ev]
	})
	diffKeyed(rep, "read", keysOf(na.Reads), keysOf(nb.Reads), func(ev ids.NetworkEventID) bool {
		return na.Reads[ev] == nb.Reads[ev]
	})
	diffKeyed(rep, "available", keysOf(na.Availables), keysOf(nb.Availables), func(ev ids.NetworkEventID) bool {
		return na.Availables[ev] == nb.Availables[ev]
	})
	diffKeyed(rep, "bind", keysOf(na.Binds), keysOf(nb.Binds), func(ev ids.NetworkEventID) bool {
		return na.Binds[ev] == nb.Binds[ev]
	})
	diffKeyed(rep, "net-err", keysOf(na.Errs), keysOf(nb.Errs), func(ev ids.NetworkEventID) bool {
		return na.Errs[ev] == nb.Errs[ev]
	})
	diffKeyed(rep, "env", keysOf(na.Envs), keysOf(nb.Envs), func(ev ids.NetworkEventID) bool {
		return na.Envs[ev] == nb.Envs[ev]
	})
	return nil
}

func diffDatagram(rep *DiffReport, a, b *tracelog.Set) error {
	da, err := tracelog.BuildDatagramIndex(a.Datagram)
	if err != nil {
		return fmt.Errorf("logcheck: diff: left datagram log: %w", err)
	}
	db, err := tracelog.BuildDatagramIndex(b.Datagram)
	if err != nil {
		return fmt.Errorf("logcheck: diff: right datagram log: %w", err)
	}
	diffKeyed(rep, "datagram-recv", keysOf(da.ByEvent), keysOf(db.ByEvent), func(ev ids.NetworkEventID) bool {
		return da.ByEvent[ev].Datagram == db.ByEvent[ev].Datagram
	})
	return nil
}

func keysOf[V any](m map[ids.NetworkEventID]V) map[ids.NetworkEventID]bool {
	out := make(map[ids.NetworkEventID]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// diffKeyed compares two keyed record families: keys only on one side, and
// shared keys whose values differ.
func diffKeyed(rep *DiffReport, what string, ka, kb map[ids.NetworkEventID]bool, equal func(ids.NetworkEventID) bool) {
	var union []ids.NetworkEventID
	for k := range ka {
		union = append(union, k)
	}
	for k := range kb {
		if !ka[k] {
			union = append(union, k)
		}
	}
	sort.Slice(union, func(i, j int) bool {
		if union[i].Thread != union[j].Thread {
			return union[i].Thread < union[j].Thread
		}
		return union[i].Event < union[j].Event
	})
	for _, k := range union {
		switch {
		case !ka[k]:
			rep.addf("%s %v: only in right log", what, k)
		case !kb[k]:
			rep.addf("%s %v: only in left log", what, k)
		case !equal(k):
			rep.addf("%s %v: values differ", what, k)
		}
	}
}
