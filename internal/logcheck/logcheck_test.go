package logcheck

import (
	"strings"
	"testing"
	"time"

	"path/filepath"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/djsock"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/tracelog"
)

// recordWorld produces the log sets of a real two-VM closed-world run.
func recordWorld(t *testing.T) (server, client *tracelog.Set) {
	t.Helper()
	net := netsim.NewNetwork(netsim.Config{Seed: 5})
	sVM, err := core.NewVM(core.Config{ID: 1, Mode: ids.Record})
	if err != nil {
		t.Fatal(err)
	}
	cVM, err := core.NewVM(core.Config{ID: 2, Mode: ids.Record})
	if err != nil {
		t.Fatal(err)
	}
	senv := djsock.NewEnv(sVM, net, "s")
	cenv := djsock.NewEnv(cVM, net, "c")
	ready := make(chan uint16, 1)
	sVM.Start(func(main *core.Thread) {
		ss, err := senv.Listen(main, 0)
		if err != nil {
			panic(err)
		}
		ready <- ss.Port()
		for i := 0; i < 2; i++ {
			conn, err := ss.Accept(main)
			if err != nil {
				panic(err)
			}
			buf := make([]byte, 4)
			conn.ReadFull(main, buf)
			conn.Close(main)
		}
	})
	port := <-ready
	cVM.Start(func(main *core.Thread) {
		var x core.SharedInt
		for i := 0; i < 2; i++ {
			x.Set(main, x.Get(main)+1)
			conn, err := cenv.Connect(main, netsim.Addr{Host: "s", Port: port})
			if err != nil {
				panic(err)
			}
			conn.Write(main, []byte("ping"))
			conn.Close(main)
		}
	})
	done := make(chan struct{})
	go func() { sVM.Wait(); cVM.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("record run deadlocked")
	}
	sVM.Close()
	cVM.Close()
	return sVM.Logs(), cVM.Logs()
}

func TestHealthyWorldPasses(t *testing.T) {
	s, c := recordWorld(t)
	if rep := CheckSet(s); !rep.OK() {
		t.Errorf("server set findings: %v", rep.Findings)
	}
	if rep := CheckSet(c); !rep.OK() {
		t.Errorf("client set findings: %v", rep.Findings)
	}
	if rep := CheckWorld([]*tracelog.Set{s, c}); !rep.OK() {
		t.Errorf("world findings: %v", rep.Findings)
	}
}

func findingsContain(rep *Report, substr string) bool {
	for _, f := range rep.Findings {
		if strings.Contains(f.Msg, substr) {
			return true
		}
	}
	return false
}

func TestScheduleGapDetected(t *testing.T) {
	set := tracelog.NewSet()
	set.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 10})
	set.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 3})
	set.Schedule.Append(&tracelog.Interval{Thread: 0, First: 6, Last: 9}) // gap 4-5
	rep := CheckSet(set)
	if !findingsContain(rep, "gap") {
		t.Errorf("gap not detected: %v", rep.Findings)
	}
}

func TestScheduleOverlapDetected(t *testing.T) {
	set := tracelog.NewSet()
	set.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 2, FinalGC: 10})
	set.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 5})
	set.Schedule.Append(&tracelog.Interval{Thread: 1, First: 5, Last: 9}) // overlap at 5
	rep := CheckSet(set)
	if !findingsContain(rep, "overlap") {
		t.Errorf("overlap not detected: %v", rep.Findings)
	}
}

func TestShortCoverageDetected(t *testing.T) {
	set := tracelog.NewSet()
	set.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 10})
	set.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 5})
	rep := CheckSet(set)
	if !findingsContain(rep, "final counter") {
		t.Errorf("short coverage not detected: %v", rep.Findings)
	}
}

func TestUnknownThreadDetected(t *testing.T) {
	set := tracelog.NewSet()
	set.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 2})
	set.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 1})
	set.Network.Append(&tracelog.ReadEntry{EventID: ids.NetworkEventID{Thread: 7, Event: 0}, N: 1})
	rep := CheckSet(set)
	if !findingsContain(rep, "unknown thread") {
		t.Errorf("unknown thread not detected: %v", rep.Findings)
	}
}

func TestNotifyBeyondFinalDetected(t *testing.T) {
	set := tracelog.NewSet()
	set.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 2})
	set.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 1})
	set.Schedule.Append(&tracelog.Notify{GC: 99, Woken: []ids.ThreadNum{0}})
	rep := CheckSet(set)
	if !findingsContain(rep, "beyond final counter") {
		t.Errorf("out-of-range notify not detected: %v", rep.Findings)
	}
}

func TestCrossVMUnknownPeerDetected(t *testing.T) {
	s, c := recordWorld(t)
	// Check the server's world with the client's logs missing: its
	// ServerSocketEntries name VM 2, which is now unknown.
	rep := CheckWorld([]*tracelog.Set{s})
	if !findingsContain(rep, "unknown peer") {
		t.Errorf("missing peer not detected: %v", rep.Findings)
	}
	// And with both present it passes.
	if rep := CheckWorld([]*tracelog.Set{s, c}); !rep.OK() {
		t.Errorf("full world flagged: %v", rep.Findings)
	}
}

func TestCrossVMThreadRangeDetected(t *testing.T) {
	server := tracelog.NewSet()
	server.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 1})
	server.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 0})
	server.Network.Append(&tracelog.ServerSocketEntry{
		ServerID: ids.NetworkEventID{Thread: 0, Event: 0},
		ClientID: ids.ConnectionID{VM: 2, Thread: 40, Event: 0}, // client has 1 thread
	})
	client := tracelog.NewSet()
	client.Schedule.Append(&tracelog.VMMeta{VM: 2, Threads: 1, FinalGC: 1})
	client.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 0})

	rep := CheckWorld([]*tracelog.Set{server, client})
	if !findingsContain(rep, "created only") {
		t.Errorf("impossible client thread not detected: %v", rep.Findings)
	}
}

func TestCrossVMDatagramCounterDetected(t *testing.T) {
	rx := tracelog.NewSet()
	rx.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 1})
	rx.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 0})
	rx.Datagram.Append(&tracelog.DatagramRecvEntry{
		EventID:    ids.NetworkEventID{Thread: 0, Event: 0},
		ReceiverGC: 0,
		Datagram:   ids.DGNetworkEventID{VM: 2, GC: 500}, // sender only reached 10
	})
	tx := tracelog.NewSet()
	tx.Schedule.Append(&tracelog.VMMeta{VM: 2, Threads: 1, FinalGC: 10})
	tx.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 9})

	rep := CheckWorld([]*tracelog.Set{rx, tx})
	if !findingsContain(rep, "only reached") {
		t.Errorf("impossible datagram counter not detected: %v", rep.Findings)
	}
}

func TestDuplicateVMIDDetected(t *testing.T) {
	a := tracelog.NewSet()
	a.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 0})
	b := tracelog.NewSet()
	b.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 0})
	rep := CheckWorld([]*tracelog.Set{a, b})
	if !findingsContain(rep, "duplicate DJVM id") {
		t.Errorf("duplicate id not detected: %v", rep.Findings)
	}
}

// truncatedSet builds a synthetic checkpoint-truncated schedule: a base
// marker, optionally the anchor checkpoint at the base, and intervals
// covering exactly [base, FinalGC).
func truncatedSet(base ids.GCount, withAnchor bool) *tracelog.Set {
	set := tracelog.NewSet()
	set.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 20})
	set.Schedule.Append(&tracelog.TruncationEntry{BaseGC: base})
	if withAnchor {
		set.Schedule.Append(&tracelog.CheckpointEntry{GC: base, NextThread: 1, TakerThread: 0, MainEventNum: 3, State: []byte("s")})
	}
	set.Schedule.Append(&tracelog.Interval{Thread: 0, First: base, Last: 19})
	return set
}

func TestTruncatedSetPasses(t *testing.T) {
	if rep := CheckSet(truncatedSet(8, true)); !rep.OK() {
		t.Errorf("healthy truncated set flagged: %v", rep.Findings)
	}
}

func TestTruncatedSetMissingAnchorDetected(t *testing.T) {
	rep := CheckSet(truncatedSet(8, false))
	if !findingsContain(rep, "no checkpoint anchors") {
		t.Errorf("missing anchor not detected: %v", rep.Findings)
	}
}

func TestTruncatedSetBelowBaseDetected(t *testing.T) {
	set := truncatedSet(8, true)
	set.Schedule.Append(&tracelog.Notify{GC: 4, Woken: []ids.ThreadNum{0}})
	rep := CheckSet(set)
	if !findingsContain(rep, "below truncation base") {
		t.Errorf("below-base notify not detected: %v", rep.Findings)
	}
}

func TestTruncatedIntervalBelowBaseDetected(t *testing.T) {
	set := tracelog.NewSet()
	set.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 20})
	set.Schedule.Append(&tracelog.TruncationEntry{BaseGC: 8})
	set.Schedule.Append(&tracelog.CheckpointEntry{GC: 8, NextThread: 1, TakerThread: 0, MainEventNum: 3, State: []byte("s")})
	set.Schedule.Append(&tracelog.Interval{Thread: 0, First: 2, Last: 5}) // survived below the base
	set.Schedule.Append(&tracelog.Interval{Thread: 0, First: 8, Last: 19})
	rep := CheckSet(set)
	if !findingsContain(rep, "below truncation base") {
		t.Errorf("below-base interval not detected: %v", rep.Findings)
	}
}

func TestTruncatedDatagramBelowBaseDetected(t *testing.T) {
	set := truncatedSet(8, true)
	set.Datagram.Append(&tracelog.DatagramRecvEntry{
		EventID:    ids.NetworkEventID{Thread: 0, Event: 0},
		ReceiverGC: 3, // below base 8
		Datagram:   ids.DGNetworkEventID{VM: 2, GC: 1},
	})
	rep := CheckSet(set)
	if !findingsContain(rep, "below truncation base") {
		t.Errorf("below-base datagram not detected: %v", rep.Findings)
	}
}

// A WAL truncated by the real compaction path must salvage into a set the
// checker accepts: TruncationEntry present, anchor checkpoint retained,
// intervals starting exactly at the base.
func TestRealTruncatedWALPasses(t *testing.T) {
	vm, err := core.NewVM(core.Config{ID: 1, Mode: ids.Record})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trunc.wal")
	if err := vm.EnableWAL(path, tracelog.WALOptions{SyncEvery: 1}); err != nil {
		t.Fatal(err)
	}
	vm.Start(func(main *core.Thread) {
		var x core.SharedInt
		for r := 0; r < 4; r++ {
			for i := 0; i < 5; i++ {
				x.Set(main, x.Get(main)+1)
			}
			checkpoint.Take(main, func() []byte { return []byte("state") })
		}
	})
	vm.Wait()
	st, err := vm.TruncateWAL(2)
	if err != nil {
		t.Fatal(err)
	}
	if st.BaseGC == 0 {
		t.Fatal("truncation kept the whole log")
	}
	set, rep, err := tracelog.RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseGC != st.BaseGC {
		t.Fatalf("recovery reports base %d, truncation stamped %d", rep.BaseGC, st.BaseGC)
	}
	if chk := CheckSet(set); !chk.OK() {
		t.Errorf("real truncated WAL flagged: %v", chk.Findings)
	}
}

// groupEpochSet builds a healthy one-member schedule carrying two
// coordinated-checkpoint epochs (each stamp preceded by its anchor).
func groupEpochSet() *tracelog.Set {
	set := tracelog.NewSet()
	set.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 20})
	set.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 19})
	set.Schedule.Append(&tracelog.CheckpointEntry{GC: 5, NextThread: 1, State: []byte("s")})
	set.Schedule.Append(&tracelog.GroupEpochEntry{Epoch: 1, GC: 5, Members: []tracelog.GroupMember{{VM: 1, AnchorGC: 5}, {VM: 2, AnchorGC: 6}}})
	set.Schedule.Append(&tracelog.CheckpointEntry{GC: 12, NextThread: 1, State: []byte("s")})
	set.Schedule.Append(&tracelog.GroupEpochEntry{Epoch: 2, GC: 12, Members: []tracelog.GroupMember{{VM: 1, AnchorGC: 12}, {VM: 2, AnchorGC: 13}}})
	return set
}

func TestGroupEpochHealthySetPasses(t *testing.T) {
	if rep := CheckSet(groupEpochSet()); !rep.OK() {
		t.Errorf("healthy group-epoch set flagged: %v", rep.Findings)
	}
}

func TestGroupEpochNonMonotonicDetected(t *testing.T) {
	set := groupEpochSet()
	set.Schedule.Append(&tracelog.CheckpointEntry{GC: 15, NextThread: 1, State: []byte("s")})
	set.Schedule.Append(&tracelog.GroupEpochEntry{Epoch: 2, GC: 15, Members: []tracelog.GroupMember{{VM: 1, AnchorGC: 15}}})
	rep := CheckSet(set)
	if !findingsContain(rep, "not strictly increasing") {
		t.Errorf("repeated epoch id not detected: %v", rep.Findings)
	}
}

func TestGroupEpochMissingAnchorCheckpointDetected(t *testing.T) {
	set := tracelog.NewSet()
	set.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 20})
	set.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 19})
	set.Schedule.Append(&tracelog.GroupEpochEntry{Epoch: 1, GC: 5, Members: []tracelog.GroupMember{{VM: 1, AnchorGC: 5}}})
	rep := CheckSet(set)
	if !findingsContain(rep, "no checkpoint at that anchor") {
		t.Errorf("anchorless stamp not detected: %v", rep.Findings)
	}
}

func TestGroupEpochSelfAnchorMismatchDetected(t *testing.T) {
	set := tracelog.NewSet()
	set.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 20})
	set.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 19})
	set.Schedule.Append(&tracelog.CheckpointEntry{GC: 5, NextThread: 1, State: []byte("s")})
	set.Schedule.Append(&tracelog.GroupEpochEntry{Epoch: 1, GC: 5, Members: []tracelog.GroupMember{{VM: 1, AnchorGC: 7}}})
	rep := CheckSet(set)
	if !findingsContain(rep, "but was stamped at") {
		t.Errorf("self-anchor mismatch not detected: %v", rep.Findings)
	}

	set2 := tracelog.NewSet()
	set2.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 20})
	set2.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 19})
	set2.Schedule.Append(&tracelog.CheckpointEntry{GC: 5, NextThread: 1, State: []byte("s")})
	set2.Schedule.Append(&tracelog.GroupEpochEntry{Epoch: 1, GC: 5, Members: []tracelog.GroupMember{{VM: 2, AnchorGC: 5}}})
	if rep := CheckSet(set2); !findingsContain(rep, "omits the stamping VM") {
		t.Errorf("missing self member not detected: %v", rep.Findings)
	}
}

func TestGroupEpochBelowBaseDetected(t *testing.T) {
	set := truncatedSet(8, true)
	set.Schedule.Append(&tracelog.GroupEpochEntry{Epoch: 1, GC: 4, Members: []tracelog.GroupMember{{VM: 1, AnchorGC: 4}}})
	rep := CheckSet(set)
	if !findingsContain(rep, "below truncation base") {
		t.Errorf("below-base stamp not detected: %v", rep.Findings)
	}
}

func TestGroupEpochBeyondFinalDetected(t *testing.T) {
	set := groupEpochSet()
	set.Schedule.Append(&tracelog.CheckpointEntry{GC: 19, NextThread: 1, State: []byte("s")})
	set.Schedule.Append(&tracelog.GroupEpochEntry{Epoch: 3, GC: 99, Members: []tracelog.GroupMember{{VM: 1, AnchorGC: 99}}})
	rep := CheckSet(set)
	if !findingsContain(rep, "beyond final counter") {
		t.Errorf("beyond-final stamp not detected: %v", rep.Findings)
	}
}

func TestWorldGroupEpochMemberListMismatchDetected(t *testing.T) {
	a := tracelog.NewSet()
	a.Schedule.Append(&tracelog.VMMeta{VM: 1, Threads: 1, FinalGC: 20})
	a.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 19})
	a.Schedule.Append(&tracelog.CheckpointEntry{GC: 5, NextThread: 1, State: []byte("s")})
	a.Schedule.Append(&tracelog.GroupEpochEntry{Epoch: 1, GC: 5, Members: []tracelog.GroupMember{{VM: 1, AnchorGC: 5}, {VM: 2, AnchorGC: 6}}})
	b := tracelog.NewSet()
	b.Schedule.Append(&tracelog.VMMeta{VM: 2, Threads: 1, FinalGC: 20})
	b.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 19})
	b.Schedule.Append(&tracelog.CheckpointEntry{GC: 6, NextThread: 1, State: []byte("s")})
	b.Schedule.Append(&tracelog.GroupEpochEntry{Epoch: 1, GC: 6, Members: []tracelog.GroupMember{{VM: 1, AnchorGC: 5}, {VM: 2, AnchorGC: 7}}})
	rep := CheckWorld([]*tracelog.Set{a, b})
	if !findingsContain(rep, "member list disagrees") {
		t.Errorf("cross-set member-list mismatch not detected: %v", rep.Findings)
	}
	// Agreeing copies pass.
	b2 := tracelog.NewSet()
	b2.Schedule.Append(&tracelog.VMMeta{VM: 2, Threads: 1, FinalGC: 20})
	b2.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 19})
	b2.Schedule.Append(&tracelog.CheckpointEntry{GC: 6, NextThread: 1, State: []byte("s")})
	b2.Schedule.Append(&tracelog.GroupEpochEntry{Epoch: 1, GC: 6, Members: []tracelog.GroupMember{{VM: 1, AnchorGC: 5}, {VM: 2, AnchorGC: 6}}})
	if rep := CheckWorld([]*tracelog.Set{a, b2}); !rep.OK() {
		t.Errorf("agreeing world flagged: %v", rep.Findings)
	}
}
