// Package logcheck validates DJVM log sets before replay — an fsck for the
// record phase. A truncated, corrupted, or mismatched log would otherwise
// surface as a replay deadlock or divergence deep into execution; the
// checker turns those into upfront diagnostics.
//
// Single-VM checks validate the internal consistency of one log set; the
// cross-VM checks validate a closed world's worth of log sets against each
// other (every connection and datagram a receiver recorded must name a
// sender that exists and a counter value that sender actually reached).
package logcheck

import (
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/tracelog"
)

// Finding is one problem discovered in a log set.
type Finding struct {
	VM  ids.DJVMID
	Msg string
}

func (f Finding) String() string {
	return fmt.Sprintf("vm %d: %s", f.VM, f.Msg)
}

// Report is the outcome of a check run.
type Report struct {
	Findings []Finding
}

// OK reports whether no problems were found.
func (r *Report) OK() bool { return len(r.Findings) == 0 }

func (r *Report) addf(vm ids.DJVMID, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{VM: vm, Msg: fmt.Sprintf(format, args...)})
}

// CheckSet validates the internal consistency of one VM's log set.
func CheckSet(set *tracelog.Set) *Report {
	rep := &Report{}
	sched, err := tracelog.BuildScheduleIndex(set.Schedule)
	if err != nil {
		rep.addf(0, "schedule log unusable: %v", err)
		return rep
	}
	vm := sched.Meta.VM
	checkSchedule(rep, vm, sched)

	netIdx, err := tracelog.BuildNetworkIndex(set.Network)
	if err != nil {
		rep.addf(vm, "network log unusable: %v", err)
	} else {
		checkNetwork(rep, vm, sched, netIdx)
	}

	dgIdx, err := tracelog.BuildDatagramIndex(set.Datagram)
	if err != nil {
		rep.addf(vm, "datagram log unusable: %v", err)
	} else {
		checkDatagram(rep, vm, sched, dgIdx)
	}
	return rep
}

// checkSchedule verifies the logical schedule intervals partition exactly
// the counter range [BaseGC, FinalGC) — BaseGC is zero for an untruncated
// log, and the checkpoint-truncation base for a compacted one, where every
// record below it was deliberately dropped.
func checkSchedule(rep *Report, vm ids.DJVMID, sched *tracelog.ScheduleIndex) {
	type span struct {
		iv     tracelog.Interval
		thread ids.ThreadNum
	}
	var spans []span
	for tn, ivs := range sched.Intervals {
		if uint32(tn) >= sched.Meta.Threads {
			rep.addf(vm, "schedule has intervals for thread %d but meta records %d threads", tn, sched.Meta.Threads)
		}
		for _, iv := range ivs {
			if iv.Last < sched.BaseGC {
				rep.addf(vm, "interval [%d,%d] of thread %d lies below truncation base %d", iv.First, iv.Last, tn, sched.BaseGC)
				continue
			}
			spans = append(spans, span{iv: iv, thread: tn})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].iv.First < spans[j].iv.First })
	next := sched.BaseGC
	for _, s := range spans {
		switch {
		case s.iv.First < next:
			rep.addf(vm, "interval [%d,%d] of thread %d overlaps counter %d", s.iv.First, s.iv.Last, s.thread, next-1)
		case s.iv.First > next:
			rep.addf(vm, "schedule gap: counters [%d,%d] covered by no interval", next, s.iv.First-1)
		}
		if s.iv.Last+1 > next {
			next = s.iv.Last + 1
		}
	}
	if next != sched.Meta.FinalGC {
		rep.addf(vm, "intervals cover counters up to %d but final counter is %d", next, sched.Meta.FinalGC)
	}
	for gc, woken := range sched.Notifies {
		if gc >= sched.Meta.FinalGC {
			rep.addf(vm, "notify record at counter %d beyond final counter %d", gc, sched.Meta.FinalGC)
		}
		if gc < sched.BaseGC {
			rep.addf(vm, "notify record at counter %d below truncation base %d", gc, sched.BaseGC)
		}
		for _, tn := range woken {
			if uint32(tn) >= sched.Meta.Threads {
				rep.addf(vm, "notify at counter %d wakes unknown thread %d", gc, tn)
			}
		}
	}
	for gc := range sched.TimedWaits {
		if gc >= sched.Meta.FinalGC {
			rep.addf(vm, "timed-wait record at counter %d beyond final counter %d", gc, sched.Meta.FinalGC)
		}
		if gc < sched.BaseGC {
			rep.addf(vm, "timed-wait record at counter %d below truncation base %d", gc, sched.BaseGC)
		}
	}
	var lastTS ids.GCount
	for i, ts := range sched.Timestamps {
		if ts.GC > sched.Meta.FinalGC {
			rep.addf(vm, "timestamp record at counter %d beyond final counter %d", ts.GC, sched.Meta.FinalGC)
		}
		if ts.GC < sched.BaseGC {
			rep.addf(vm, "timestamp record at counter %d below truncation base %d", ts.GC, sched.BaseGC)
		}
		if i > 0 && ts.GC < lastTS {
			rep.addf(vm, "timestamps out of order at counter %d", ts.GC)
		}
		lastTS = ts.GC
	}
	var lastCP ids.GCount
	for i, cp := range sched.Checkpoints {
		if cp.GC >= sched.Meta.FinalGC {
			rep.addf(vm, "checkpoint at counter %d beyond final counter %d", cp.GC, sched.Meta.FinalGC)
		}
		if cp.GC < sched.BaseGC {
			rep.addf(vm, "checkpoint at counter %d below truncation base %d", cp.GC, sched.BaseGC)
		}
		if i > 0 && cp.GC <= lastCP {
			rep.addf(vm, "checkpoints out of order at counter %d", cp.GC)
		}
		lastCP = cp.GC
		if uint32(cp.TakerThread) >= sched.Meta.Threads {
			rep.addf(vm, "checkpoint taken by unknown thread %d", cp.TakerThread)
		}
	}
	// A truncated log must retain its anchor: the checkpoint whose counter
	// equals the base is the only resume point guaranteed to exist, and
	// truncation always keeps it. A compacted log without it is unreplayable
	// (no checkpoint at or past the base may exist at all).
	if sched.BaseGC > 0 {
		anchored := false
		for _, cp := range sched.Checkpoints {
			if cp.GC == sched.BaseGC {
				anchored = true
				break
			}
		}
		if !anchored {
			rep.addf(vm, "log truncated at counter %d but no checkpoint anchors that base", sched.BaseGC)
		}
	}
	checkObjOrder(rep, vm, sched)
	checkGroupEpochs(rep, vm, sched)
}

// checkGroupEpochs verifies the coordinated-checkpoint stamps: epoch ids must
// be strictly increasing in append order, each stamp must land inside the
// replayable range, and the stamping VM must appear in its own member list
// with the stamp's counter as its anchor — backed by a checkpoint at exactly
// that counter, since a stamp without its anchor names a recovery line this
// member can never rejoin.
func checkGroupEpochs(rep *Report, vm ids.DJVMID, sched *tracelog.ScheduleIndex) {
	cps := make(map[ids.GCount]bool, len(sched.Checkpoints))
	for _, cp := range sched.Checkpoints {
		cps[cp.GC] = true
	}
	var lastEpoch uint64
	for i, ge := range sched.GroupEpochs {
		if i > 0 && ge.Epoch <= lastEpoch {
			rep.addf(vm, "group epoch %d follows epoch %d — ids not strictly increasing", ge.Epoch, lastEpoch)
		}
		lastEpoch = ge.Epoch
		if ge.GC >= sched.Meta.FinalGC {
			rep.addf(vm, "group epoch %d stamped at counter %d beyond final counter %d", ge.Epoch, ge.GC, sched.Meta.FinalGC)
		}
		if ge.GC < sched.BaseGC {
			rep.addf(vm, "group epoch %d stamped at counter %d below truncation base %d", ge.Epoch, ge.GC, sched.BaseGC)
		}
		self := false
		for _, m := range ge.Members {
			if m.VM == vm {
				self = true
				if m.AnchorGC != ge.GC {
					rep.addf(vm, "group epoch %d anchors this VM at counter %d but was stamped at %d", ge.Epoch, m.AnchorGC, ge.GC)
				}
			}
		}
		if !self {
			rep.addf(vm, "group epoch %d omits the stamping VM from its member list", ge.Epoch)
		}
		if !cps[ge.GC] {
			rep.addf(vm, "group epoch %d stamped at counter %d with no checkpoint at that anchor", ge.Epoch, ge.GC)
		}
	}
}

// checkObjOrder verifies the sharded-order records: each object's access runs
// must partition its accessSeq range [0, lastSeq] exactly — contiguous from 0,
// no gaps, no overlaps (the per-object analogue of the interval-partition
// check) — and every per-object notify/timed-wait must land inside that range
// and name threads that exist. A global-mode log carrying per-object records
// is itself a finding: something recorded sharded data without the marker.
func checkObjOrder(rep *Report, vm ids.DJVMID, sched *tracelog.ScheduleIndex) {
	if sched.OrderMode == ids.OrderGlobal &&
		(len(sched.ObjRuns) > 0 || len(sched.ObjNotifies) > 0 || len(sched.ObjTimedWaits) > 0) {
		rep.addf(vm, "schedule carries per-object order records but no sharded order-mode marker")
	}
	final := map[ids.ObjectID]ids.AccessSeq{} // one past each object's last access
	for obj, runs := range sched.ObjRuns {
		next := ids.AccessSeq(0)
		for _, r := range runs {
			// BuildScheduleIndex already rejects out-of-order and inverted
			// runs per object, so only gaps remain to diagnose here.
			if r.First > next {
				rep.addf(vm, "%v access gap: sequences [%d,%d] covered by no run", obj, next, r.First-1)
			}
			if uint32(r.Thread) >= sched.Meta.Threads {
				rep.addf(vm, "%v run [%d,%d] names unknown thread %d", obj, r.First, r.Last, r.Thread)
			}
			next = r.Last + 1
		}
		final[obj] = next
	}
	for ev, woken := range sched.ObjNotifies {
		if ev.Seq >= final[ev.Obj] {
			rep.addf(vm, "obj-notify at %v access %d beyond the object's last access %d", ev.Obj, ev.Seq, final[ev.Obj])
		}
		for _, tn := range woken {
			if uint32(tn) >= sched.Meta.Threads {
				rep.addf(vm, "obj-notify at %v access %d wakes unknown thread %d", ev.Obj, ev.Seq, tn)
			}
		}
	}
	for ev := range sched.ObjTimedWaits {
		if ev.Seq >= final[ev.Obj] {
			rep.addf(vm, "obj-timed-wait at %v access %d beyond the object's last access %d", ev.Obj, ev.Seq, final[ev.Obj])
		}
	}
}

// checkNetwork verifies network-log records reference threads that exist
// and carry sane values.
func checkNetwork(rep *Report, vm ids.DJVMID, sched *tracelog.ScheduleIndex, idx *tracelog.NetworkIndex) {
	threadOK := func(ev ids.NetworkEventID, what string) {
		if uint32(ev.Thread) >= sched.Meta.Threads {
			rep.addf(vm, "%s record for unknown thread %d", what, ev.Thread)
		}
	}
	for ev, cid := range idx.ServerSockets {
		threadOK(ev, "server-socket")
		// A connection from this same VM is legitimate — a loopback stream
		// (the explorer's generated programs build their channels this way).
		// For those the client thread must be one this VM created; foreign
		// client threads are validated cross-VM by CheckWorld instead.
		if cid.VM == vm && uint32(cid.Thread) >= sched.Meta.Threads {
			rep.addf(vm, "accept %v records a loopback connection from unknown thread %d", ev, cid.Thread)
		}
	}
	for ev := range idx.Reads {
		threadOK(ev, "read")
	}
	for ev := range idx.Availables {
		threadOK(ev, "available")
	}
	for ev, b := range idx.Binds {
		threadOK(ev, "bind")
		if b.Port == 0 {
			rep.addf(vm, "bind %v recorded port 0", ev)
		}
	}
	for ev := range idx.Errs {
		threadOK(ev, "net-err")
	}
	for ev := range idx.OpenReads {
		threadOK(ev, "open-read")
	}
	for ev := range idx.Envs {
		threadOK(ev, "env")
	}
	for ev, ns := range idx.NetSpans {
		threadOK(ev, "net-span")
		if ns.GC >= sched.Meta.FinalGC {
			rep.addf(vm, "net-span %v at counter %d beyond final counter %d", ev, ns.GC, sched.Meta.FinalGC)
		}
		switch ns.Op {
		case tracelog.NetOpConnect, tracelog.NetOpAccept, tracelog.NetOpRead, tracelog.NetOpWrite:
		default:
			rep.addf(vm, "net-span %v has unknown op %d", ev, ns.Op)
		}
	}
}

// checkDatagram verifies datagram-log records against the schedule.
func checkDatagram(rep *Report, vm ids.DJVMID, sched *tracelog.ScheduleIndex, idx *tracelog.DatagramIndex) {
	for ev, entry := range idx.ByEvent {
		if uint32(ev.Thread) >= sched.Meta.Threads {
			rep.addf(vm, "datagram-recv record for unknown thread %d", ev.Thread)
		}
		if entry.ReceiverGC >= sched.Meta.FinalGC {
			rep.addf(vm, "datagram-recv %v at counter %d beyond final counter %d",
				ev, entry.ReceiverGC, sched.Meta.FinalGC)
		}
		if entry.ReceiverGC < sched.BaseGC {
			rep.addf(vm, "datagram-recv %v at counter %d below truncation base %d",
				ev, entry.ReceiverGC, sched.BaseGC)
		}
		if entry.Datagram.VM == vm {
			rep.addf(vm, "datagram-recv %v names this same VM as sender", ev)
		}
	}
}

// CheckWorld validates a closed world's log sets against each other, after
// checking each individually. Every receiver-side record naming a peer VM
// must name one that exists, a thread it created, and a counter it reached.
func CheckWorld(sets []*tracelog.Set) *Report {
	rep := &Report{}
	metas := map[ids.DJVMID]tracelog.VMMeta{}
	indexes := map[ids.DJVMID]*tracelog.NetworkIndex{}
	dgIndexes := map[ids.DJVMID]*tracelog.DatagramIndex{}
	epochs := map[ids.DJVMID][]tracelog.GroupEpochEntry{}

	for _, set := range sets {
		sub := CheckSet(set)
		rep.Findings = append(rep.Findings, sub.Findings...)
		sched, err := tracelog.BuildScheduleIndex(set.Schedule)
		if err != nil {
			continue
		}
		if _, dup := metas[sched.Meta.VM]; dup {
			rep.addf(sched.Meta.VM, "duplicate DJVM id across the world's log sets")
			continue
		}
		metas[sched.Meta.VM] = sched.Meta
		epochs[sched.Meta.VM] = sched.GroupEpochs
		if ni, err := tracelog.BuildNetworkIndex(set.Network); err == nil {
			indexes[sched.Meta.VM] = ni
		}
		if di, err := tracelog.BuildDatagramIndex(set.Datagram); err == nil {
			dgIndexes[sched.Meta.VM] = di
		}
	}

	// Every carrier of a group-epoch stamp must agree on the epoch's member
	// list: the stamps are correlated copies of one recovery line, and a
	// disagreement means the sets are from different runs (or a coordinator
	// bug) — the line solver would refuse the epoch.
	type carrier struct {
		vm      ids.DJVMID
		members []tracelog.GroupMember
	}
	ref := map[uint64]carrier{}
	vms := make([]ids.DJVMID, 0, len(epochs))
	for vm := range epochs {
		vms = append(vms, vm)
	}
	sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
	for _, vm := range vms {
		for _, ge := range epochs[vm] {
			first, ok := ref[ge.Epoch]
			if !ok {
				ref[ge.Epoch] = carrier{vm: vm, members: ge.Members}
				continue
			}
			if !sameGroupMembers(first.members, ge.Members) {
				rep.addf(vm, "group epoch %d member list disagrees with VM %d's copy", ge.Epoch, first.vm)
			}
		}
	}

	for vm, ni := range indexes {
		for ev, cid := range ni.ServerSockets {
			peer, ok := metas[cid.VM]
			if !ok {
				rep.addf(vm, "accept %v names unknown peer VM %d", ev, cid.VM)
				continue
			}
			if uint32(cid.Thread) >= peer.Threads {
				rep.addf(vm, "accept %v names thread %d of VM %d, which created only %d threads",
					ev, cid.Thread, cid.VM, peer.Threads)
			}
		}
	}
	for vm, di := range dgIndexes {
		for ev, entry := range di.ByEvent {
			peer, ok := metas[entry.Datagram.VM]
			if !ok {
				rep.addf(vm, "datagram-recv %v names unknown sender VM %d", ev, entry.Datagram.VM)
				continue
			}
			if entry.Datagram.GC >= peer.FinalGC {
				rep.addf(vm, "datagram-recv %v names counter %d of VM %d, which only reached %d",
					ev, entry.Datagram.GC, entry.Datagram.VM, peer.FinalGC)
			}
		}
	}
	return rep
}

// sameGroupMembers reports whether two stamped member lists are identical
// (both are sorted by VM at stamp time).
func sameGroupMembers(a, b []tracelog.GroupMember) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
