package causal

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/ids"
	"repro/internal/kvapp"
	"repro/internal/tracelog"
)

// mkSet builds a minimal closed-world log set for tests.
func mkSet(vm ids.DJVMID, finalGC ids.GCount, threads uint32, build func(s *tracelog.Set)) *tracelog.Set {
	s := tracelog.NewSet()
	if build != nil {
		build(s)
	}
	s.Schedule.Append(&tracelog.VMMeta{VM: vm, World: ids.ClosedWorld, Threads: threads, FinalGC: finalGC})
	return s
}

// TestSyntheticTwoVM pins the construction rules on a hand-made world:
// vm 1 connects (gc 2) and writes 5 bytes (gc 3); vm 2 accepts (gc 1) and
// reads them (gc 4).
func TestSyntheticTwoVM(t *testing.T) {
	conn := ids.ConnectionID{VM: 1, Thread: 0, Event: 0}
	client := mkSet(1, 10, 1, func(s *tracelog.Set) {
		s.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 9})
		s.Network.Append(&tracelog.NetSpanEntry{
			EventID: ids.NetworkEventID{Thread: 0, Event: 0}, GC: 2,
			Op: tracelog.NetOpConnect, Conn: conn,
		})
		s.Network.Append(&tracelog.NetSpanEntry{
			EventID: ids.NetworkEventID{Thread: 0, Event: 1}, GC: 3,
			Op: tracelog.NetOpWrite, Conn: conn, Offset: 0, Len: 5,
		})
	})
	server := mkSet(2, 10, 1, func(s *tracelog.Set) {
		s.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 9})
		s.Network.Append(&tracelog.ServerSocketEntry{
			ServerID: ids.NetworkEventID{Thread: 0, Event: 0}, ClientID: conn,
		})
		s.Network.Append(&tracelog.NetSpanEntry{
			EventID: ids.NetworkEventID{Thread: 0, Event: 0}, GC: 1,
			Op: tracelog.NetOpAccept, Conn: conn,
		})
		s.Network.Append(&tracelog.NetSpanEntry{
			EventID: ids.NetworkEventID{Thread: 0, Event: 1}, GC: 4,
			Op: tracelog.NetOpRead, Conn: conn, Offset: 0, Len: 5,
		})
	})

	g, err := Build([]*tracelog.Set{client, server})
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats.Messages != 2 {
		t.Errorf("Messages = %d, want 2 (handshake + stream)", g.Stats.Messages)
	}
	if g.Stats.EdgesByKind[EdgeHandshake] != 1 || g.Stats.EdgesByKind[EdgeStream] != 1 {
		t.Errorf("edge kinds = %v, want 1 handshake + 1 stream", g.Stats.EdgesByKind)
	}
	if g.Stats.SplitMisses != 0 {
		t.Errorf("SplitMisses = %d, want 0", g.Stats.SplitMisses)
	}

	// The accept (vm 2, gc 1) must start no earlier than the connect's
	// completion: connect at gc 2 means 3 events precede it on vm 1.
	accept, ok := g.NodeAt(2, 1)
	if !ok {
		t.Fatal("no node covers vm 2 gc 1")
	}
	if g.Nodes[accept].First != 1 {
		t.Errorf("accept segment starts at %d, want 1 (cut at edge target)", g.Nodes[accept].First)
	}
	if g.Start[accept] < 3 {
		t.Errorf("accept starts at logical %d, want >= 3 (after the connect)", g.Start[accept])
	}
	// The read's segment carries vm 1's clock through the write (gc 3 → 4
	// events happened-before).
	read, _ := g.NodeAt(2, 4)
	vi1, _ := g.VMIndex(1)
	if g.VC[read][vi1] < 4 {
		t.Errorf("read VC[vm1] = %d, want >= 4 (write at gc 3 precedes it)", g.VC[read][vi1])
	}

	// WhyDiverged from the end of vm 2 sees vm 1's history.
	causes, err := WhyDiverged(g, 2, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	saw1 := false
	for _, c := range causes {
		if c.VM == 1 {
			saw1 = true
		}
	}
	if !saw1 {
		t.Error("WhyDiverged(vm 2) reports no vm 1 ancestors")
	}
}

// TestBuildRejectsCycle: mutually-inconsistent logs (each VM claims its
// message arrived before the other sent) must fail loudly, not produce a
// bogus order.
func TestBuildRejectsCycle(t *testing.T) {
	// vm 1 sends a datagram at gc 5 that vm 2 received at gc 1; vm 2 sends
	// at gc 5 one that vm 1 received at gc 1. Both claims cannot hold.
	a := mkSet(1, 10, 1, func(s *tracelog.Set) {
		s.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 9})
		s.Datagram.Append(&tracelog.DatagramRecvEntry{
			EventID:    ids.NetworkEventID{Thread: 0, Event: 0},
			ReceiverGC: 1,
			Datagram:   ids.DGNetworkEventID{VM: 2, GC: 5},
		})
	})
	b := mkSet(2, 10, 1, func(s *tracelog.Set) {
		s.Schedule.Append(&tracelog.Interval{Thread: 0, First: 0, Last: 9})
		s.Datagram.Append(&tracelog.DatagramRecvEntry{
			EventID:    ids.NetworkEventID{Thread: 0, Event: 0},
			ReceiverGC: 1,
			Datagram:   ids.DGNetworkEventID{VM: 1, GC: 5},
		})
	})
	if _, err := Build([]*tracelog.Set{a, b}); err == nil {
		t.Fatal("Build accepted mutually-inconsistent log sets")
	}
}

// TestBuildRejectsShardedLogs: a sharded-order log set has no single global
// event order, so causal reconstruction must refuse it with a pointer to the
// fix rather than build a graph missing intra-VM edges.
func TestBuildRejectsShardedLogs(t *testing.T) {
	set := mkSet(1, 0, 2, func(s *tracelog.Set) {
		s.Schedule.Append(&tracelog.OrderModeEntry{Mode: ids.OrderSharded})
		s.Schedule.Append(&tracelog.ObjRun{Obj: 0, Thread: 0, First: 0, Last: 4})
		s.Schedule.Append(&tracelog.ObjRun{Obj: 1, Thread: 1, First: 0, Last: 4})
	})
	_, err := Build([]*tracelog.Set{set})
	if err == nil {
		t.Fatal("Build accepted a sharded-order log set")
	}
	if !strings.Contains(err.Error(), "record with OrderGlobal") {
		t.Errorf("error %q does not tell the user to record with OrderGlobal", err)
	}
}

// recorded kvapp run shared by the property tests (recording is the slow
// part; the analyses are read-only).
var (
	kvOnce sync.Once
	kvLogs kvapp.RunLogs
	kvErr  error
)

func recordedKV(t *testing.T) kvapp.RunLogs {
	t.Helper()
	kvOnce.Do(func() {
		_, kvLogs, kvErr = kvapp.Run(kvapp.Config{
			Replicas: 1, Clients: 2, OpsPerClient: 5,
			Mode: ids.Record, Seed: 42, Chaos: kvapp.DefaultChaos(),
			CausalTrace: true, TimestampEvery: 8,
		})
	})
	if kvErr != nil {
		t.Fatalf("kvapp record: %v", kvErr)
	}
	return kvLogs
}

// TestKVAppGraphProperties is the acceptance property test: on a real
// recorded multi-VM run the reconstructed graph is acyclic, totally orders
// each VM's critical events by global counter, keeps vector clocks
// edge-consistent, and correlates every recorded cross-VM message.
func TestKVAppGraphProperties(t *testing.T) {
	logs := recordedKV(t)
	g, err := Build(logs)
	if err != nil {
		t.Fatal(err)
	}

	// Acyclic: the topological order covers every node.
	if len(g.Order) != len(g.Nodes) {
		t.Fatalf("topological order covers %d/%d nodes", len(g.Order), len(g.Nodes))
	}
	if g.Stats.SplitMisses != 0 {
		t.Errorf("SplitMisses = %d, want 0", g.Stats.SplitMisses)
	}

	// Per-VM total order by global counter: each VM's segments tile
	// [0, FinalGC) exactly, and logical start times strictly advance along
	// the counter order.
	pos := make(map[NodeID]int, len(g.Order))
	for i, id := range g.Order {
		pos[id] = i
	}
	for vi, vm := range g.VMs {
		var prev NodeID = -1
		next := ids.GCount(0)
		for gc := ids.GCount(0); gc < vm.FinalGC; {
			id, ok := g.NodeAt(vm.ID, gc)
			if !ok {
				t.Fatalf("vm %d: no node covers counter %d", vm.ID, gc)
			}
			n := g.Nodes[id]
			if n.First != next {
				t.Fatalf("vm %d: segment starts at %d, want %d (gap or overlap)", vm.ID, n.First, next)
			}
			if prev >= 0 {
				if pos[prev] >= pos[id] {
					t.Fatalf("vm %d: counter order not respected by topological order at gc %d", vm.ID, gc)
				}
				if g.Start[id] < g.Start[prev]+g.Nodes[prev].Events() {
					t.Fatalf("vm %d: logical times overlap at gc %d", vm.ID, gc)
				}
			}
			prev, next = id, n.Last+1
			gc = n.Last + 1
		}
		if next != vm.FinalGC {
			t.Fatalf("vm %d: segments cover up to %d, want %d", vm.ID, next, vm.FinalGC)
		}
		_ = vi
	}

	// Vector clocks are edge-consistent and each node owns its own entries.
	for _, e := range g.Edges {
		from, to := g.VC[e.From], g.VC[e.To]
		for i := range from {
			if from[i] > to[i] {
				t.Fatalf("edge %v: VC[from][%d]=%d > VC[to][%d]=%d", e.Kind, i, from[i], i, to[i])
			}
		}
		fvi, _ := g.VMIndex(g.Nodes[e.From].VM)
		if to[fvi] < uint64(e.FromGC)+1 {
			t.Fatalf("edge %v: target VC misses source event %d", e.Kind, e.FromGC)
		}
	}

	// Every recorded cross-VM message is correlated: handshakes and datagram
	// deliveries are counted straight off the logs; stream matches are
	// verified by an independent overlap count below.
	var wantHandshakes, wantDatagrams int
	for _, set := range logs {
		ni, err := tracelog.BuildNetworkIndex(set.Network)
		if err != nil {
			t.Fatal(err)
		}
		wantHandshakes += len(ni.ServerSockets)
		di, err := tracelog.BuildDatagramIndex(set.Datagram)
		if err != nil {
			t.Fatal(err)
		}
		wantDatagrams += len(di.ByEvent)
	}
	if g.Stats.UnmatchedHandshakes != 0 {
		t.Errorf("UnmatchedHandshakes = %d, want 0 (tracing was on everywhere)", g.Stats.UnmatchedHandshakes)
	}
	if g.Stats.DanglingDatagrams != 0 {
		t.Errorf("DanglingDatagrams = %d, want 0 (closed world)", g.Stats.DanglingDatagrams)
	}
	if got := g.Stats.EdgesByKind[EdgeHandshake]; got != wantHandshakes {
		t.Errorf("handshake edges = %d, recorded accepts = %d", got, wantHandshakes)
	}
	if got := g.Stats.EdgesByKind[EdgeDatagram]; got != wantDatagrams {
		t.Errorf("datagram edges = %d, recorded deliveries = %d", got, wantDatagrams)
	}
	if got, want := g.Stats.EdgesByKind[EdgeStream], independentStreamMatches(t, logs); got != want {
		t.Errorf("stream edges = %d, independently counted matched writes = %d", got, want)
	}
	if wantHandshakes == 0 || g.Stats.EdgesByKind[EdgeStream] == 0 || wantDatagrams == 0 {
		t.Errorf("degenerate run: handshakes=%d streams=%d datagrams=%d — want all nonzero",
			wantHandshakes, g.Stats.EdgesByKind[EdgeStream], wantDatagrams)
	}
}

// independentStreamMatches recounts, straight off the raw logs and with none
// of the builder's machinery, how many write spans have at least one
// overlapping peer read span.
func independentStreamMatches(t *testing.T, logs kvapp.RunLogs) int {
	t.Helper()
	type span struct {
		vm      ids.DJVMID
		lo, hi  uint64
		conn    ids.ConnectionID
		isWrite bool
	}
	var spans []span
	for _, set := range logs {
		si, err := tracelog.BuildScheduleIndex(set.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		ni, err := tracelog.BuildNetworkIndex(set.Network)
		if err != nil {
			t.Fatal(err)
		}
		for _, ns := range ni.NetSpans {
			if ns.Op != tracelog.NetOpRead && ns.Op != tracelog.NetOpWrite {
				continue
			}
			spans = append(spans, span{
				vm: si.Meta.VM, lo: ns.Offset, hi: ns.Offset + uint64(ns.Len),
				conn: ns.Conn, isWrite: ns.Op == tracelog.NetOpWrite,
			})
		}
	}
	matched := 0
	for _, w := range spans {
		if !w.isWrite {
			continue
		}
		for _, r := range spans {
			if !r.isWrite && r.conn == w.conn && r.vm != w.vm && r.lo < w.hi && r.hi > w.lo {
				matched++
				break
			}
		}
	}
	return matched
}

// TestKVAppCriticalPath sanity-checks the stall attribution on the recorded
// run: the path is at least as long as any single VM's schedule and never
// longer than the whole world's event count, and wall attribution is
// available because the run sampled timestamps.
func TestKVAppCriticalPath(t *testing.T) {
	logs := recordedKV(t)
	g, err := Build(logs)
	if err != nil {
		t.Fatal(err)
	}
	rep := CriticalPath(g)
	var maxFinal, sum uint64
	for _, vm := range g.VMs {
		sum += uint64(vm.FinalGC)
		if uint64(vm.FinalGC) > maxFinal {
			maxFinal = uint64(vm.FinalGC)
		}
	}
	if rep.TotalEvents < maxFinal || rep.TotalEvents > sum {
		t.Errorf("critical path = %d events, want within [%d,%d]", rep.TotalEvents, maxFinal, sum)
	}
	if len(rep.Path) == 0 {
		t.Error("empty critical path")
	}
	if !rep.HasWall {
		t.Fatal("run recorded timestamps but HasWall is false")
	}
	if rep.WallNanos <= 0 {
		t.Errorf("WallNanos = %d, want > 0", rep.WallNanos)
	}
	var pathEvents uint64
	for _, s := range rep.Path {
		pathEvents += uint64(s.Last-s.First) + 1
	}
	if pathEvents != rep.TotalEvents {
		t.Errorf("path steps sum to %d events, TotalEvents = %d", pathEvents, rep.TotalEvents)
	}
}
