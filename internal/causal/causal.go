// Package causal reconstructs the global happens-before order of a recorded
// distributed run from its per-VM log sets — post-mortem, with no replay.
//
// The inputs are exactly what the record phase already captures, plus the two
// optional annotation kinds this package motivated (tracelog.KindTimestamp,
// tracelog.KindNetSpan):
//
//   - Program order: each VM's logical schedule intervals totally order that
//     VM's critical events by global counter, and attribute every counter
//     value to a thread.
//   - Synchronization edges: a Notify record at counter g wakes a set of
//     threads; each woken thread's next scheduled event happens-after g.
//     Thread handoffs — consecutive counter values executed by different
//     threads — are edges too: the counter itself is the handoff token.
//   - Cross-VM message edges: a connect's net-span and the matching accept's
//     ServerSocketEntry (correlated by connectionId) form handshake edges;
//     write and read net-spans on the same connection are matched by
//     application-stream byte overlap to form stream-data edges; datagram
//     deliveries carry the sender's ⟨VM, counter⟩ in their dgNetworkEventId
//     and need no annotations at all.
//
// Nodes are *segments* of schedule intervals: every interval is split at the
// endpoints of incoming and outgoing cross edges, so an edge's source event
// ends its segment and an edge's target event begins one. Without the split,
// a request/response exchange inside one interval pair would produce a false
// cycle at interval granularity; with it, the graph of an honest log set is
// acyclic (Build fails loudly otherwise).
//
// On top of the graph Build assigns each node a logical start time (longest
// path from any root, one critical event = one tick) and a vector clock, so
// callers can test ordering, export timelines, and attribute critical-path
// time.
package causal

import (
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/tracelog"
)

// NodeID indexes a node within Graph.Nodes.
type NodeID int32

// Node is one segment of a thread's logical schedule: the thread executed
// every counter value in [First, Last] consecutively, with no incoming or
// outgoing cross edge strictly inside the range.
type Node struct {
	VM     ids.DJVMID
	Thread ids.ThreadNum
	First  ids.GCount
	Last   ids.GCount // inclusive
}

// Events is the number of critical events the segment covers.
func (n Node) Events() uint64 { return uint64(n.Last-n.First) + 1 }

// EdgeKind classifies a happens-before edge.
type EdgeKind uint8

const (
	// EdgeProgram links consecutive segments of the same thread.
	EdgeProgram EdgeKind = iota + 1
	// EdgeHandoff links consecutive counter values executed by different
	// threads of one VM: the global counter hand-over orders them.
	EdgeHandoff
	// EdgeNotify links a notify event to each woken thread's next event.
	EdgeNotify
	// EdgeHandshake links a connect event to the accept that received its
	// connectionId meta frame.
	EdgeHandshake
	// EdgeStream links a stream write to the first peer read that consumed
	// any of its bytes (later reads of the same bytes follow by the
	// receiver's program order).
	EdgeStream
	// EdgeDatagram links a datagram send to one delivery of it.
	EdgeDatagram
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeProgram:
		return "program"
	case EdgeHandoff:
		return "handoff"
	case EdgeNotify:
		return "notify"
	case EdgeHandshake:
		return "handshake"
	case EdgeStream:
		return "stream"
	case EdgeDatagram:
		return "datagram"
	default:
		return "edge?"
	}
}

// Edge is one happens-before edge. FromGC is the counter value of the source
// event (always the From node's Last); ToGC is the counter value of the
// target event (always the To node's First).
type Edge struct {
	Kind         EdgeKind
	From, To     NodeID
	FromGC, ToGC ids.GCount
}

// crossEdge is a collected-but-unresolved edge between two events, gathered
// before segmentation decides which nodes the events land in.
type crossEdge struct {
	kind       EdgeKind
	fromVM     int // index into Graph.VMs
	fromThread ids.ThreadNum
	fromGC     ids.GCount
	toVM       int
	toThread   ids.ThreadNum
	toGC       ids.GCount
}

// VMInfo summarizes one VM's log set within the graph.
type VMInfo struct {
	ID      ids.DJVMID
	Threads uint32
	FinalGC ids.GCount
	// Timestamps are the VM's sampled wall-clock anchors in counter order
	// (empty unless the run recorded with EnableTimestamps).
	Timestamps []tracelog.TimestampEntry
}

// BuildStats reports what the builder saw, including everything it could NOT
// match — an unmatched count is a coverage hole, never a silent drop.
type BuildStats struct {
	Nodes       int
	EdgesByKind map[EdgeKind]int
	// Messages is the number of cross-VM message edges (handshake + stream +
	// datagram) — one per recorded message the builder could correlate.
	Messages int
	// UnmatchedHandshakes counts accepts whose peer connect span (or own
	// accept span) is missing — typically a run recorded without causal
	// tracing enabled.
	UnmatchedHandshakes int
	// UnmatchedWrites counts write spans none of whose bytes appear in any
	// peer read span (e.g. bytes still unread when the connection closed).
	UnmatchedWrites int
	// UnmatchedNotifies counts notify wakes whose woken thread never ran
	// another event.
	UnmatchedNotifies int
	// DanglingDatagrams counts deliveries naming a sender VM or counter the
	// log sets don't cover.
	DanglingDatagrams int
	// SplitMisses counts cross edges whose endpoint did not land exactly on
	// a segment boundary; nonzero values indicate an internal builder bug.
	SplitMisses int
}

// Graph is the reconstructed happens-before graph of one recorded world.
type Graph struct {
	VMs   []VMInfo
	Nodes []Node
	Edges []Edge
	// Order is a topological order of node ids (existence proves acyclicity).
	Order []NodeID
	// Start is each node's logical start time: the longest event-count path
	// from any root. One critical event = one tick, so within a VM the
	// segments tile [Start, Start+Events) without overlap.
	Start []uint64
	// VC is each node's vector clock, indexed like VMs: VC[n][i] is the
	// number of VM i's events that happened-before the end of node n
	// (inclusive of n's own events).
	VC [][]uint64
	// In and Out are adjacency lists of edge indexes per node.
	In, Out [][]int32
	Stats   BuildStats

	vmIndex map[ids.DJVMID]int
	// byVM holds each VM's node ids sorted by First (disjoint within a VM).
	byVM [][]NodeID
}

// VMIndex maps a DJVM id to its index in Graph.VMs.
func (g *Graph) VMIndex(vm ids.DJVMID) (int, bool) {
	i, ok := g.vmIndex[vm]
	return i, ok
}

// NodeAt finds the node covering counter value gc on the given VM.
func (g *Graph) NodeAt(vm ids.DJVMID, gc ids.GCount) (NodeID, bool) {
	vi, ok := g.vmIndex[vm]
	if !ok {
		return 0, false
	}
	nodes := g.byVM[vi]
	i := sort.Search(len(nodes), func(i int) bool { return g.Nodes[nodes[i]].First > gc })
	if i == 0 {
		return 0, false
	}
	n := nodes[i-1]
	if gc > g.Nodes[n].Last {
		return 0, false
	}
	return n, true
}

// vmLogs is the per-VM working state during Build.
type vmLogs struct {
	sched *tracelog.ScheduleIndex
	net   *tracelog.NetworkIndex
	dg    *tracelog.DatagramIndex
	// spans is every schedule interval sorted by First (counter ranges are
	// disjoint across threads), for counter→thread attribution.
	spans []ivSpan
	// cutEnd[t][g]: thread t's segment covering g must end at g (g is a
	// cross-edge source). cutStart[t][h]: the segment covering h must start
	// at h (h is a cross-edge target).
	cutEnd   map[ids.ThreadNum]map[ids.GCount]bool
	cutStart map[ids.ThreadNum]map[ids.GCount]bool
}

type ivSpan struct {
	first, last ids.GCount
	thread      ids.ThreadNum
}

// threadAt attributes a counter value to the thread that executed it.
func (v *vmLogs) threadAt(gc ids.GCount) (ids.ThreadNum, bool) {
	i := sort.Search(len(v.spans), func(i int) bool { return v.spans[i].first > gc })
	if i == 0 || gc > v.spans[i-1].last {
		return 0, false
	}
	return v.spans[i-1].thread, true
}

func (v *vmLogs) markCut(m map[ids.ThreadNum]map[ids.GCount]bool, t ids.ThreadNum, gc ids.GCount) {
	set := m[t]
	if set == nil {
		set = make(map[ids.GCount]bool)
		m[t] = set
	}
	set[gc] = true
}

// Build reconstructs the happens-before graph from one log set per VM.
// The sets must come from one recorded world (duplicate VM ids are an
// error); cross-VM message edges beyond datagrams require the run to have
// been recorded with causal tracing enabled — without it the graph still
// builds, with the unmatched counts in Stats reporting the holes.
func Build(sets []*tracelog.Set) (*Graph, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("causal: no log sets")
	}
	g := &Graph{
		vmIndex: make(map[ids.DJVMID]int),
		Stats:   BuildStats{EdgesByKind: make(map[EdgeKind]int)},
	}
	var vms []*vmLogs
	for _, set := range sets {
		sched, err := tracelog.BuildScheduleIndex(set.Schedule)
		if err != nil {
			return nil, fmt.Errorf("causal: schedule log: %w", err)
		}
		if sched.OrderMode != ids.OrderGlobal {
			// Sharded logs order events per object, not by one global counter;
			// there is no total intra-VM order to segment, so the graph this
			// package builds does not exist for them.
			return nil, fmt.Errorf("causal: vm %d was recorded with %v order mode, which has no global event order; record with OrderGlobal for causal analysis",
				sched.Meta.VM, sched.OrderMode)
		}
		net, err := tracelog.BuildNetworkIndex(set.Network)
		if err != nil {
			return nil, fmt.Errorf("causal: vm %d: network log: %w", sched.Meta.VM, err)
		}
		dg, err := tracelog.BuildDatagramIndex(set.Datagram)
		if err != nil {
			return nil, fmt.Errorf("causal: vm %d: datagram log: %w", sched.Meta.VM, err)
		}
		if _, dup := g.vmIndex[sched.Meta.VM]; dup {
			return nil, fmt.Errorf("causal: duplicate log set for vm %d", sched.Meta.VM)
		}
		v := &vmLogs{
			sched:    sched,
			net:      net,
			dg:       dg,
			cutEnd:   make(map[ids.ThreadNum]map[ids.GCount]bool),
			cutStart: make(map[ids.ThreadNum]map[ids.GCount]bool),
		}
		for tn, ivs := range sched.Intervals {
			for _, iv := range ivs {
				v.spans = append(v.spans, ivSpan{first: iv.First, last: iv.Last, thread: tn})
			}
		}
		sort.Slice(v.spans, func(i, j int) bool { return v.spans[i].first < v.spans[j].first })
		g.vmIndex[sched.Meta.VM] = len(vms)
		g.VMs = append(g.VMs, VMInfo{
			ID:         sched.Meta.VM,
			Threads:    sched.Meta.Threads,
			FinalGC:    sched.Meta.FinalGC,
			Timestamps: sched.Timestamps,
		})
		vms = append(vms, v)
	}

	cross := collectCrossEdges(g, vms)

	// Mark the segment cuts every cross edge needs, then build the nodes.
	for _, ce := range cross {
		vms[ce.fromVM].markCut(vms[ce.fromVM].cutEnd, ce.fromThread, ce.fromGC)
		vms[ce.toVM].markCut(vms[ce.toVM].cutStart, ce.toThread, ce.toGC)
	}
	for vi, v := range vms {
		g.byVM = append(g.byVM, nil)
		for _, sp := range v.spans { // already sorted by First
			for _, seg := range splitSpan(sp, v.cutEnd[sp.thread], v.cutStart[sp.thread]) {
				id := NodeID(len(g.Nodes))
				g.Nodes = append(g.Nodes, Node{
					VM: g.VMs[vi].ID, Thread: sp.thread, First: seg.first, Last: seg.last,
				})
				g.byVM[vi] = append(g.byVM[vi], id)
			}
		}
	}
	g.Stats.Nodes = len(g.Nodes)

	// Chain edges: each VM's segments, in counter order, totally order the
	// VM's critical events.
	for vi := range vms {
		nodes := g.byVM[vi]
		for i := 1; i < len(nodes); i++ {
			a, b := g.Nodes[nodes[i-1]], g.Nodes[nodes[i]]
			kind := EdgeHandoff
			if a.Thread == b.Thread {
				kind = EdgeProgram
			}
			g.addEdge(Edge{Kind: kind, From: nodes[i-1], To: nodes[i], FromGC: a.Last, ToGC: b.First})
		}
	}
	// Cross edges, now resolvable to exact segment boundaries.
	for _, ce := range cross {
		from, okF := g.NodeAt(g.VMs[ce.fromVM].ID, ce.fromGC)
		to, okT := g.NodeAt(g.VMs[ce.toVM].ID, ce.toGC)
		if !okF || !okT {
			g.Stats.SplitMisses++
			continue
		}
		if g.Nodes[from].Last != ce.fromGC || g.Nodes[to].First != ce.toGC {
			g.Stats.SplitMisses++
		}
		g.addEdge(Edge{Kind: ce.kind, From: from, To: to, FromGC: ce.fromGC, ToGC: ce.toGC})
	}
	g.Stats.Messages = g.Stats.EdgesByKind[EdgeHandshake] +
		g.Stats.EdgesByKind[EdgeStream] + g.Stats.EdgesByKind[EdgeDatagram]

	if err := g.finalize(); err != nil {
		return nil, err
	}
	return g, nil
}

func (g *Graph) addEdge(e Edge) {
	g.Edges = append(g.Edges, e)
	g.Stats.EdgesByKind[e.Kind]++
}

// splitSpan cuts one schedule interval into segments at the marked points:
// a cutEnd at g closes the segment containing g at g; a cutStart at h opens
// a new segment at h.
func splitSpan(sp ivSpan, ends, starts map[ids.GCount]bool) []ivSpan {
	bounds := []ids.GCount{sp.first}
	for g := range ends {
		if g >= sp.first && g < sp.last {
			bounds = append(bounds, g+1)
		}
	}
	for h := range starts {
		if h > sp.first && h <= sp.last {
			bounds = append(bounds, h)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	var out []ivSpan
	for i, b := range bounds {
		if i > 0 && b == bounds[i-1] {
			continue // dedup
		}
		if len(out) > 0 {
			out[len(out)-1].last = b - 1
		}
		out = append(out, ivSpan{first: b, last: sp.last, thread: sp.thread})
	}
	return out
}

// collectCrossEdges gathers every notify, handshake, stream-data, and
// datagram edge as ⟨event, event⟩ pairs, before segmentation.
func collectCrossEdges(g *Graph, vms []*vmLogs) []crossEdge {
	var cross []crossEdge

	// Notify edges: notifier's event → each woken thread's next event.
	for vi, v := range vms {
		for gc, woken := range v.sched.Notifies {
			nt, ok := v.threadAt(gc)
			if !ok {
				continue
			}
			for _, wt := range woken {
				ivs := v.sched.Intervals[wt]
				i := sort.Search(len(ivs), func(i int) bool { return ivs[i].Last > gc })
				if i == len(ivs) || ivs[i].First <= gc {
					// Never ran again, or the "next" interval contains the
					// notify counter itself (a self-notify — program order
					// already covers it).
					g.Stats.UnmatchedNotifies++
					continue
				}
				cross = append(cross, crossEdge{
					kind: EdgeNotify, fromVM: vi, fromThread: nt, fromGC: gc,
					toVM: vi, toThread: wt, toGC: ivs[i].First,
				})
			}
		}
	}

	// Handshake edges: client connect → server accept, correlated by the
	// connectionId the accept recorded. Both endpoint counter values come
	// from net-spans.
	for vi, v := range vms {
		for serverID, clientID := range v.net.ServerSockets {
			acceptSpan, ok := v.net.NetSpans[serverID]
			if !ok || acceptSpan.Op != tracelog.NetOpAccept {
				g.Stats.UnmatchedHandshakes++
				continue
			}
			cvi, ok := g.vmIndex[clientID.VM]
			if !ok {
				g.Stats.UnmatchedHandshakes++
				continue
			}
			connectSpan, ok := vms[cvi].net.NetSpans[ids.NetworkEventID{Thread: clientID.Thread, Event: clientID.Event}]
			if !ok || connectSpan.Op != tracelog.NetOpConnect {
				g.Stats.UnmatchedHandshakes++
				continue
			}
			cross = append(cross, crossEdge{
				kind: EdgeHandshake, fromVM: cvi, fromThread: clientID.Thread, fromGC: connectSpan.GC,
				toVM: vi, toThread: serverID.Thread, toGC: acceptSpan.GC,
			})
		}
	}

	// Stream-data edges: per connection and direction, match each write span
	// to the first peer read span overlapping its byte range.
	type dirKey struct {
		conn ids.ConnectionID
		vm   int // writer's VM index
	}
	writes := make(map[dirKey][]tracelog.NetSpanEntry)
	reads := make(map[dirKey][]tracelog.NetSpanEntry) // keyed by the READER's VM
	for vi, v := range vms {
		for _, ns := range v.net.NetSpans {
			switch ns.Op {
			case tracelog.NetOpWrite:
				k := dirKey{conn: ns.Conn, vm: vi}
				writes[k] = append(writes[k], ns)
			case tracelog.NetOpRead:
				k := dirKey{conn: ns.Conn, vm: vi}
				reads[k] = append(reads[k], ns)
			}
		}
	}
	for wk, ws := range writes {
		// The peer's reads on this connection: same conn, different VM.
		var rs []tracelog.NetSpanEntry
		var readerVM int
		for rk, cand := range reads {
			if rk.conn == wk.conn && rk.vm != wk.vm {
				rs = append(rs, cand...)
				readerVM = rk.vm
			}
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i].Offset < ws[j].Offset })
		sort.Slice(rs, func(i, j int) bool { return rs[i].Offset < rs[j].Offset })
		ri := 0
		for _, w := range ws {
			wEnd := w.Offset + uint64(w.Len)
			for ri < len(rs) && rs[ri].Offset+uint64(rs[ri].Len) <= w.Offset {
				ri++
			}
			if ri == len(rs) || rs[ri].Offset >= wEnd {
				g.Stats.UnmatchedWrites++
				continue
			}
			r := rs[ri]
			wt, okW := vms[wk.vm].threadAt(w.GC)
			rt, okR := vms[readerVM].threadAt(r.GC)
			if !okW || !okR {
				g.Stats.UnmatchedWrites++
				continue
			}
			cross = append(cross, crossEdge{
				kind: EdgeStream, fromVM: wk.vm, fromThread: wt, fromGC: w.GC,
				toVM: readerVM, toThread: rt, toGC: r.GC,
			})
		}
	}

	// Datagram edges: the delivery record already names the sender's
	// ⟨VM, counter⟩ — no annotation needed.
	for vi, v := range vms {
		for ev, entry := range v.dg.ByEvent {
			svi, ok := g.vmIndex[entry.Datagram.VM]
			if !ok || svi == vi {
				g.Stats.DanglingDatagrams++
				continue
			}
			st, ok := vms[svi].threadAt(entry.Datagram.GC)
			if !ok {
				g.Stats.DanglingDatagrams++
				continue
			}
			cross = append(cross, crossEdge{
				kind: EdgeDatagram, fromVM: svi, fromThread: st, fromGC: entry.Datagram.GC,
				toVM: vi, toThread: ev.Thread, toGC: entry.ReceiverGC,
			})
		}
	}
	return cross
}

// finalize topologically sorts the graph (proving acyclicity), then assigns
// logical start times and vector clocks in one forward pass.
func (g *Graph) finalize() error {
	n := len(g.Nodes)
	g.In = make([][]int32, n)
	g.Out = make([][]int32, n)
	indeg := make([]int, n)
	for ei, e := range g.Edges {
		g.Out[e.From] = append(g.Out[e.From], int32(ei))
		g.In[e.To] = append(g.In[e.To], int32(ei))
		indeg[e.To]++
	}
	queue := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	g.Order = make([]NodeID, 0, n)
	g.Start = make([]uint64, n)
	g.VC = make([][]uint64, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		g.Order = append(g.Order, id)

		vc := make([]uint64, len(g.VMs))
		for _, ei := range g.In[id] {
			e := g.Edges[ei]
			if f := g.Start[e.From] + g.Nodes[e.From].Events(); f > g.Start[id] {
				g.Start[id] = f
			}
			for i, c := range g.VC[e.From] {
				if c > vc[i] {
					vc[i] = c
				}
			}
		}
		vi := g.vmIndex[g.Nodes[id].VM]
		vc[vi] = uint64(g.Nodes[id].Last) + 1
		g.VC[id] = vc

		for _, ei := range g.Out[id] {
			to := g.Edges[ei].To
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(g.Order) != n {
		stuck := 0
		var sample Node
		for i, d := range indeg {
			if d > 0 {
				if stuck == 0 {
					sample = g.Nodes[i]
				}
				stuck++
			}
		}
		return fmt.Errorf("causal: happens-before graph has a cycle through %d nodes (e.g. vm %d thread %d [%d,%d]) — log sets are mutually inconsistent",
			stuck, sample.VM, sample.Thread, sample.First, sample.Last)
	}
	return nil
}

// HasWall reports whether every VM recorded at least two distinct wall-clock
// anchors, i.e. whether counter values can be mapped to wall time.
func (g *Graph) HasWall() bool {
	for _, vm := range g.VMs {
		ts := vm.Timestamps
		if len(ts) < 2 || ts[0].GC == ts[len(ts)-1].GC {
			return false
		}
	}
	return true
}

// WallAt interpolates the wall-clock time (unix nanos) at which VM vi's
// counter reached gc, from the VM's sampled anchors. Values outside the
// anchored range clamp to the nearest anchor. ok is false when the VM has no
// anchors.
func (g *Graph) WallAt(vi int, gc ids.GCount) (int64, bool) {
	ts := g.VMs[vi].Timestamps
	if len(ts) == 0 {
		return 0, false
	}
	i := sort.Search(len(ts), func(i int) bool { return ts[i].GC >= gc })
	if i == len(ts) {
		return ts[len(ts)-1].Wall, true
	}
	if ts[i].GC == gc || i == 0 {
		return ts[i].Wall, true
	}
	lo, hi := ts[i-1], ts[i]
	if hi.GC == lo.GC {
		return lo.Wall, true
	}
	frac := float64(gc-lo.GC) / float64(hi.GC-lo.GC)
	return lo.Wall + int64(frac*float64(hi.Wall-lo.Wall)), true
}
