package causal

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestPerfettoExport validates the acceptance criterion end to end: the export
// is well-formed Chrome trace-event JSON and its message flow events exactly
// match the recorded cross-VM message count.
func TestPerfettoExport(t *testing.T) {
	logs := recordedKV(t)
	g, err := Build(logs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	stats, err := WritePerfetto(&buf, g)
	if err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Ph   string          `json:"ph"`
			Pid  uint32          `json:"pid"`
			Tid  uint32          `json:"tid"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Name string          `json:"name"`
			Cat  string          `json:"cat"`
			ID   string          `json:"id"`
			BP   string          `json:"bp"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	msgCats := map[string]bool{"handshake": true, "stream": true, "datagram": true}
	slices := 0
	starts := make(map[string]string) // flow id → cat
	finishes := make(map[string]string)
	msgFlows := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Dur <= 0 {
				t.Errorf("slice %q has non-positive duration %v", ev.Name, ev.Dur)
			}
		case "s":
			if _, dup := starts[ev.ID]; dup {
				t.Errorf("duplicate flow start id %q", ev.ID)
			}
			starts[ev.ID] = ev.Cat
			if msgCats[ev.Cat] {
				msgFlows++
			}
		case "f":
			if ev.BP != "e" {
				t.Errorf("flow finish id %q: bp = %q, want \"e\"", ev.ID, ev.BP)
			}
			finishes[ev.ID] = ev.Cat
		}
	}
	if slices != len(g.Nodes) || slices != stats.Slices {
		t.Errorf("slices = %d, want %d (one per node)", slices, len(g.Nodes))
	}
	if len(starts) != len(finishes) {
		t.Errorf("%d flow starts but %d finishes", len(starts), len(finishes))
	}
	for id, cat := range starts {
		if fcat, ok := finishes[id]; !ok {
			t.Errorf("flow %q has no finish event", id)
		} else if fcat != cat {
			t.Errorf("flow %q: start cat %q != finish cat %q", id, cat, fcat)
		}
	}

	// The acceptance check: message flow arrows == recorded cross-VM messages.
	if msgFlows != g.Stats.Messages {
		t.Errorf("message flows = %d, recorded cross-VM messages = %d", msgFlows, g.Stats.Messages)
	}
	if stats.Messages != g.Stats.Messages {
		t.Errorf("stats.Messages = %d, graph messages = %d", stats.Messages, g.Stats.Messages)
	}
	if msgFlows == 0 {
		t.Error("no message flows in a multi-VM run")
	}
}
