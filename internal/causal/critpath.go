package causal

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
)

// PathStep is one coalesced stretch of the critical path: consecutive
// critical events of one thread.
type PathStep struct {
	VM     ids.DJVMID
	Thread ids.ThreadNum
	First  ids.GCount
	Last   ids.GCount
}

// ThreadStall attributes waiting time to one thread: the gaps between its
// consecutive schedule segments, which during replay are exactly the
// turn-wait stalls the thread spends parked for other threads' counters.
type ThreadStall struct {
	VM     ids.DJVMID
	Thread ids.ThreadNum
	// Events is the thread's total critical-event count.
	Events uint64
	// Segments is how many graph nodes the thread's schedule produced.
	Segments int
	// StallEvents is the logical stall: summed longest-path gaps between the
	// thread's consecutive segments, in critical-event ticks.
	StallEvents uint64
	// StallNanos is the wall-clock stall, interpolated from the run's
	// sampled timestamp anchors (0 unless the graph HasWall).
	StallNanos int64
}

// Report is the critical-path analysis of one reconstructed run.
type Report struct {
	// TotalEvents is the critical path's length in events — the minimum
	// number of serial event ticks any replay of this run must take.
	TotalEvents uint64
	// SumEvents is the total critical events across all VMs; TotalEvents /
	// SumEvents is the run's inherent serialization ratio.
	SumEvents uint64
	// Path is the critical path, oldest step first.
	Path []PathStep
	// PathShare is the number of critical-path events contributed per VM.
	PathShare map[ids.DJVMID]uint64
	// Threads is the per-thread stall attribution, sorted worst-first.
	Threads []ThreadStall
	// HasWall reports whether wall-clock attribution was possible.
	HasWall bool
	// WallNanos is the recorded run's wall-clock span (latest final anchor
	// minus earliest initial anchor) when HasWall.
	WallNanos int64
	// Stalls is the distribution of per-gap wall stalls when HasWall.
	Stalls obs.HistogramSnapshot
}

// CriticalPath computes the longest event-count path through the graph and
// attributes stall time to each thread. The longest path is the replay
// speed-of-light: every edge on it is a dependency replay cannot overlap.
func CriticalPath(g *Graph) Report {
	rep := Report{PathShare: make(map[ids.DJVMID]uint64), HasWall: g.HasWall()}

	// Longest path: Start is already the longest-path start time; recover
	// the argmax predecessor per node to walk the path back.
	best := make([]NodeID, len(g.Nodes))
	for i := range best {
		best[i] = -1
	}
	for _, id := range g.Order {
		for _, ei := range g.In[id] {
			e := g.Edges[ei]
			if g.Start[e.From]+g.Nodes[e.From].Events() == g.Start[id] {
				best[id] = e.From
			}
		}
	}
	end := NodeID(-1)
	for _, id := range g.Order {
		f := g.Start[id] + g.Nodes[id].Events()
		if end < 0 || f > g.Start[end]+g.Nodes[end].Events() {
			end = id
		}
	}
	if end >= 0 {
		rep.TotalEvents = g.Start[end] + g.Nodes[end].Events()
		for id := end; id >= 0; id = best[id] {
			n := g.Nodes[id]
			rep.PathShare[n.VM] += n.Events()
			if len(rep.Path) > 0 {
				last := &rep.Path[len(rep.Path)-1]
				if last.VM == n.VM && last.Thread == n.Thread && n.Last+1 == last.First {
					last.First = n.First
					continue
				}
			}
			rep.Path = append(rep.Path, PathStep{VM: n.VM, Thread: n.Thread, First: n.First, Last: n.Last})
		}
		// Walked back-to-front; present oldest first.
		for i, j := 0, len(rep.Path)-1; i < j; i, j = i+1, j-1 {
			rep.Path[i], rep.Path[j] = rep.Path[j], rep.Path[i]
		}
	}
	for _, vm := range g.VMs {
		rep.SumEvents += uint64(vm.FinalGC)
	}

	// Per-thread stall attribution.
	type tkey struct {
		vm int
		t  ids.ThreadNum
	}
	byThread := make(map[tkey][]NodeID)
	for id, n := range g.Nodes {
		vi := g.vmIndex[n.VM]
		k := tkey{vm: vi, t: n.Thread}
		byThread[k] = append(byThread[k], NodeID(id))
	}
	var stallHist obs.Histogram
	for k, nodes := range byThread {
		sort.Slice(nodes, func(i, j int) bool { return g.Nodes[nodes[i]].First < g.Nodes[nodes[j]].First })
		st := ThreadStall{VM: g.VMs[k.vm].ID, Thread: k.t, Segments: len(nodes)}
		for i, id := range nodes {
			n := g.Nodes[id]
			st.Events += n.Events()
			if i == 0 {
				continue
			}
			prev := g.Nodes[nodes[i-1]]
			if gap := g.Start[id] - (g.Start[nodes[i-1]] + prev.Events()); gap > 0 {
				st.StallEvents += gap
			}
			if rep.HasWall {
				endW, _ := g.WallAt(k.vm, prev.Last+1)
				startW, _ := g.WallAt(k.vm, n.First)
				if d := startW - endW; d > 0 {
					st.StallNanos += d
					stallHist.Observe(time.Duration(d))
				}
			}
		}
		rep.Threads = append(rep.Threads, st)
	}
	sort.Slice(rep.Threads, func(i, j int) bool {
		a, b := rep.Threads[i], rep.Threads[j]
		if a.StallNanos != b.StallNanos {
			return a.StallNanos > b.StallNanos
		}
		if a.StallEvents != b.StallEvents {
			return a.StallEvents > b.StallEvents
		}
		if a.VM != b.VM {
			return a.VM < b.VM
		}
		return a.Thread < b.Thread
	})
	if rep.HasWall {
		rep.Stalls = stallHist.Snapshot()
		var lo, hi int64
		for vi, vm := range g.VMs {
			s, _ := g.WallAt(vi, 0)
			e, _ := g.WallAt(vi, vm.FinalGC)
			if vi == 0 || s < lo {
				lo = s
			}
			if vi == 0 || e > hi {
				hi = e
			}
		}
		rep.WallNanos = hi - lo
	}
	return rep
}

// WriteReport renders the critical-path report for humans.
func (r Report) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "critical path  %d events", r.TotalEvents)
	if r.SumEvents > 0 {
		fmt.Fprintf(w, "  (%.1f%% of %d total — inherent serialization)",
			100*float64(r.TotalEvents)/float64(r.SumEvents), r.SumEvents)
	}
	fmt.Fprintln(w)
	if r.HasWall {
		fmt.Fprintf(w, "recorded span  %v\n", time.Duration(r.WallNanos))
	}
	for _, s := range r.Path {
		fmt.Fprintf(w, "  vm %-3d thread %-3d gc [%d,%d]  (%d events)\n",
			s.VM, s.Thread, s.First, s.Last, uint64(s.Last-s.First)+1)
	}
	fmt.Fprintln(w, "per-thread stalls (worst first):")
	for _, t := range r.Threads {
		fmt.Fprintf(w, "  vm %-3d thread %-3d events %-7d segments %-5d stall %d ticks",
			t.VM, t.Thread, t.Events, t.Segments, t.StallEvents)
		if r.HasWall {
			fmt.Fprintf(w, "  %v wall", time.Duration(t.StallNanos))
		}
		fmt.Fprintln(w)
	}
	if r.HasWall && r.Stalls.Count > 0 {
		fmt.Fprintf(w, "stall gaps     n=%d mean=%v p50=%v p99=%v max=%v\n",
			r.Stalls.Count, r.Stalls.Mean(), r.Stalls.Quantile(0.50),
			r.Stalls.Quantile(0.99), r.Stalls.Max())
	}
}
