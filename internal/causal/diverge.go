package causal

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/ids"
)

// Cause is one event range that causally precedes a divergence point.
type Cause struct {
	VM     ids.DJVMID
	Thread ids.ThreadNum
	First  ids.GCount
	Last   ids.GCount
	// Finish is the range's logical finish time — higher means more recent.
	Finish uint64
	// Dist is the number of happens-before edges between this range and the
	// divergence point (1 = direct predecessor).
	Dist int
	// Via is the kind of the edge leading out of this range toward the
	// divergence point.
	Via EdgeKind
}

// WhyDiverged walks the happens-before graph backwards from the event at
// ⟨vm, gc⟩ and returns the k most recent causally-preceding event ranges
// across all VMs — the recorded history that fed the diverged event. When gc
// lies beyond the VM's last node (a divergence detected after the final
// recorded event), the walk starts from the VM's last node.
func WhyDiverged(g *Graph, vm ids.DJVMID, gc ids.GCount, k int) ([]Cause, error) {
	vi, ok := g.vmIndex[vm]
	if !ok {
		return nil, fmt.Errorf("causal: no log set for vm %d", vm)
	}
	start, ok := g.NodeAt(vm, gc)
	if !ok {
		nodes := g.byVM[vi]
		if len(nodes) == 0 {
			return nil, fmt.Errorf("causal: vm %d recorded no schedule intervals", vm)
		}
		// Clamp to the last node at or before gc (gc may be FinalGC or the
		// counter value of an event that never committed).
		i := sort.Search(len(nodes), func(i int) bool { return g.Nodes[nodes[i]].First > gc })
		if i == 0 {
			return nil, fmt.Errorf("causal: vm %d has no events at or before counter %d", vm, gc)
		}
		start = nodes[i-1]
	}

	// Reverse BFS over in-edges, recording each ancestor's distance and the
	// edge kind it reaches the divergence point through.
	type visit struct {
		dist int
		via  EdgeKind
	}
	seen := map[NodeID]visit{start: {dist: 0}}
	queue := []NodeID{start}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, ei := range g.In[id] {
			e := g.Edges[ei]
			if _, done := seen[e.From]; done {
				continue
			}
			// via is the edge leaving the ancestor along the (BFS-shortest)
			// path toward the divergence point.
			seen[e.From] = visit{dist: seen[id].dist + 1, via: e.Kind}
			queue = append(queue, e.From)
		}
	}
	delete(seen, start) // "preceding" excludes the divergence node itself

	causes := make([]Cause, 0, len(seen))
	for id, v := range seen {
		n := g.Nodes[id]
		causes = append(causes, Cause{
			VM: n.VM, Thread: n.Thread, First: n.First, Last: n.Last,
			Finish: g.Start[id] + n.Events(), Dist: v.dist, Via: v.via,
		})
	}
	sort.Slice(causes, func(i, j int) bool {
		if causes[i].Finish != causes[j].Finish {
			return causes[i].Finish > causes[j].Finish
		}
		return causes[i].Dist < causes[j].Dist
	})
	if k > 0 && len(causes) > k {
		causes = causes[:k]
	}
	return causes, nil
}

// WriteWhyDiverged renders the root-cause report for a DivergenceError: where
// replay diverged, which threads were stuck waiting for which counters, and
// the K most recent recorded events that causally precede the divergence
// point across all VMs.
func WriteWhyDiverged(w io.Writer, g *Graph, div *core.DivergenceError, k int) error {
	fmt.Fprintf(w, "divergence: %v\n", div)
	fmt.Fprintf(w, "at: vm %d thread %d counter %d\n", div.VM, div.Thread, div.GC)
	if len(div.Waiting) > 0 {
		threads := make([]ids.ThreadNum, 0, len(div.Waiting))
		for t := range div.Waiting {
			threads = append(threads, t)
		}
		sort.Slice(threads, func(i, j int) bool { return threads[i] < threads[j] })
		fmt.Fprintln(w, "parked threads at detection:")
		for _, t := range threads {
			fmt.Fprintf(w, "  thread %-3d waiting for counter %d\n", t, div.Waiting[t])
		}
	}
	causes, err := WhyDiverged(g, div.VM, div.GC, k)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "last %d causally-preceding recorded event ranges (most recent first):\n", len(causes))
	for _, c := range causes {
		fmt.Fprintf(w, "  vm %-3d thread %-3d gc [%d,%d]  %d hop(s) away via %v\n",
			c.VM, c.Thread, c.First, c.Last, c.Dist, c.Via)
	}
	return nil
}
