package causal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// PerfettoStats summarizes what WritePerfetto emitted.
type PerfettoStats struct {
	// Slices is the number of ph:"X" complete events (one per graph node).
	Slices int
	// Flows is the number of flow arrows (each a ph:"s"/ph:"f" pair).
	Flows int
	// FlowsByKind breaks Flows down by edge kind.
	FlowsByKind map[EdgeKind]int
	// Messages is the graph's cross-VM message count (handshake + stream +
	// datagram edges); by construction it equals the message flows emitted.
	Messages int
}

// traceEvent is one Chrome trace-event object. Only the fields the
// trace-event format defines are emitted; ts/dur are in microseconds.
type traceEvent struct {
	Ph   string         `json:"ph"`
	Pid  uint32         `json:"pid"`
	Tid  uint32         `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WritePerfetto exports the graph as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Each VM becomes a process,
// each thread a track, each graph node a slice, and each notify / handshake /
// stream / datagram edge a flow arrow from the source event's position to the
// target segment's start.
//
// The timeline is *logical*: one critical event = one microsecond, and each
// node is placed at its longest-path start time. That keeps the export
// deterministic for a given log set and guarantees every flow arrow points
// forward; wall-clock attribution lives in CriticalPath instead.
func WritePerfetto(w io.Writer, g *Graph) (PerfettoStats, error) {
	stats := PerfettoStats{
		FlowsByKind: make(map[EdgeKind]int),
		Messages:    g.Stats.Messages,
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return stats, err
	}
	first := true
	emit := func(ev traceEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	// Process/thread naming metadata.
	for _, vm := range g.VMs {
		if err := emit(traceEvent{
			Ph: "M", Pid: uint32(vm.ID), Name: "process_name",
			Args: map[string]any{"name": fmt.Sprintf("vm %d", vm.ID)},
		}); err != nil {
			return stats, err
		}
		for t := uint32(0); t < vm.Threads; t++ {
			if err := emit(traceEvent{
				Ph: "M", Pid: uint32(vm.ID), Tid: t, Name: "thread_name",
				Args: map[string]any{"name": fmt.Sprintf("thread %d", t)},
			}); err != nil {
				return stats, err
			}
		}
	}

	// One complete slice per node, at its logical start time.
	for id, n := range g.Nodes {
		if err := emit(traceEvent{
			Ph:  "X",
			Pid: uint32(n.VM), Tid: uint32(n.Thread),
			Ts: float64(g.Start[id]), Dur: float64(n.Events()),
			Name: fmt.Sprintf("gc [%d,%d]", n.First, n.Last),
			Cat:  "schedule",
			Args: map[string]any{"first": uint64(n.First), "last": uint64(n.Last)},
		}); err != nil {
			return stats, err
		}
	}

	// Flow arrows for the non-chain edges: "s" at the source event's position
	// inside its slice, "f" (binding point "e" = enclosing slice) at the
	// target segment's start.
	for ei, e := range g.Edges {
		switch e.Kind {
		case EdgeNotify, EdgeHandshake, EdgeStream, EdgeDatagram:
		default:
			continue
		}
		from, to := g.Nodes[e.From], g.Nodes[e.To]
		cat := e.Kind.String()
		id := strconv.Itoa(ei)
		if err := emit(traceEvent{
			Ph:  "s",
			Pid: uint32(from.VM), Tid: uint32(from.Thread),
			Ts:   float64(g.Start[e.From] + uint64(e.FromGC-from.First)),
			Name: cat, Cat: cat, ID: id,
		}); err != nil {
			return stats, err
		}
		if err := emit(traceEvent{
			Ph:  "f",
			Pid: uint32(to.VM), Tid: uint32(to.Thread),
			Ts:   float64(g.Start[e.To] + uint64(e.ToGC-to.First)),
			Name: cat, Cat: cat, ID: id, BP: "e",
		}); err != nil {
			return stats, err
		}
		stats.Flows++
		stats.FlowsByKind[e.Kind]++
	}
	stats.Slices = len(g.Nodes)

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return stats, err
	}
	return stats, bw.Flush()
}
