// Package super closes the paper's fault-tolerance loop (§8): it watches a
// recording DJVM for fail-stop, repairs the crashed VM's write-ahead log,
// and prepares a checkpoint-anchored restart — automatically, where PR 3's
// ingredients (durable WAL, torn-write recovery, checkpoint resume) each had
// to be wired by hand per test.
//
// Detection is progress-based, not liveness-based: a recording VM has no
// heartbeat protocol, but its event counters are lock-free atomics that keep
// moving as long as any thread executes critical events. The supervisor polls
// the counter total and declares fail-stop after a configurable window with
// no movement — which catches both a killed process (counters frozen) and the
// chaos engine's in-situ crash (a thread blocked forever inside the
// GC-critical section freezes every other thread too, so the total freezes
// the same way).
//
// Recovery then runs tracelog.RecoverFile on the WAL, picks the latest
// salvaged checkpoint as the restart anchor (falling back to replay-from-zero
// when the log was never truncated and holds no checkpoint), and hands the
// repaired set to the application's restart callback, which rebuilds the VM
// with checkpoint.ResumeConfig + StopAtLogEnd and fast-forwards to the crash
// point. Outcomes surface through obs: recoveries, restarts, fallbacks, and
// a mean-time-to-recover histogram.
package super

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tracelog"
)

// Config tunes detection and names the artifacts recovery works on.
type Config struct {
	// WALPath is the supervised VM's write-ahead log, repaired on detection.
	WALPath string
	// Heartbeat is the progress-poll interval. Zero means 2ms.
	Heartbeat time.Duration
	// FailAfter is the no-progress window after which the VM is declared
	// failed. Zero means 250ms. It bounds detection latency from below, so
	// it also floors MTTR; soak tests shrink it, production keeps it above
	// the longest legitimate pause (GC, slow I/O) to avoid false positives.
	FailAfter time.Duration
	// Metrics receives the supervisor's recovery counters and MTTR
	// observations. Nil means don't report. This is the supervisor's own
	// metric set — the supervised VM's metrics die with it.
	Metrics *obs.Metrics
	// Restart, when set, is invoked once with the prepared recovery; it
	// should rebuild the VM from the anchor checkpoint (or from zero),
	// drive it to the end of the salvaged log, and return when the replica
	// has rejoined. Its duration is the recovery half of MTTR.
	Restart func(*Recovery) error
}

// Recovery is a prepared restart: the repaired log set and the anchor to
// resume from.
type Recovery struct {
	// Logs is the replayable set salvaged from the WAL.
	Logs *tracelog.Set
	// Report describes the salvage: prefix bounds, dropped records, whether
	// the log was clean.
	Report *tracelog.RecoveryReport
	// Checkpoint is the restart anchor — the latest checkpoint salvaged from
	// the log — or nil when recovery falls back to replay-from-zero.
	Checkpoint *checkpoint.Snapshot
}

// Outcome reports what one supervision episode observed.
type Outcome struct {
	// Detected reports whether fail-stop was declared (false after Stop on a
	// VM that completed cleanly).
	Detected bool
	// Recovery is the prepared restart (nil unless Detected).
	Recovery *Recovery
	// FallbackZero reports that no checkpoint was salvageable and the
	// restart replays from the beginning of the log.
	FallbackZero bool
	// DetectLatency is how long the counters had been frozen when fail-stop
	// was declared (≥ FailAfter by construction).
	DetectLatency time.Duration
	// RecoverLatency spans detection to the restart callback returning — the
	// per-episode MTTR observation.
	RecoverLatency time.Duration
	// LastTotal is the supervised VM's critical-event total at detection.
	LastTotal uint64
}

// Supervisor watches one recording VM. Create with Watch, end with Stop (for
// a VM that completes cleanly) or let detection run its course; Wait returns
// the episode's outcome either way.
type Supervisor struct {
	cfg     Config
	vm      *core.VM
	stop    chan struct{}
	done    chan struct{}
	outcome *Outcome
	err     error
}

// Watch starts supervising vm's progress. The returned Supervisor owns a
// single goroutine; it exits after clean Stop or after one detection episode
// (recover + restart) completes.
func Watch(vm *core.VM, cfg Config) *Supervisor {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 250 * time.Millisecond
	}
	s := &Supervisor{
		cfg:  cfg,
		vm:   vm,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go s.run()
	return s
}

// Stop stands the supervisor down (the supervised VM completed cleanly).
// Safe to call more than once; no-op after detection already fired.
func (s *Supervisor) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
}

// Wait blocks until the supervision episode ends and returns its outcome:
// (nil, nil) after a clean Stop, the detection outcome otherwise. An error
// means detection fired but recovery itself failed (unreadable WAL,
// truncated log without a salvageable anchor, restart callback failure).
func (s *Supervisor) Wait() (*Outcome, error) {
	<-s.done
	return s.outcome, s.err
}

func (s *Supervisor) run() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.Heartbeat)
	defer tick.Stop()
	m := s.vm.Metrics()
	last := m.TotalEvents()
	lastMove := time.Now()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
		cur := m.TotalEvents()
		if cur != last {
			last, lastMove = cur, time.Now()
			continue
		}
		if frozen := time.Since(lastMove); frozen >= s.cfg.FailAfter {
			s.outcome, s.err = s.recover(frozen, cur)
			return
		}
	}
}

// recover runs the salvage-anchor-restart sequence for one detection.
func (s *Supervisor) recover(frozen time.Duration, total uint64) (*Outcome, error) {
	t0 := time.Now()
	out := &Outcome{Detected: true, DetectLatency: frozen, LastTotal: total}
	logs, rep, err := tracelog.RecoverFile(s.cfg.WALPath)
	if err != nil {
		return out, fmt.Errorf("super: wal repair: %w", err)
	}
	rec := &Recovery{Logs: logs, Report: rep}
	out.Recovery = rec
	cp, err := checkpoint.Latest(logs)
	switch {
	case err == nil:
		rec.Checkpoint = cp
	case errors.Is(err, checkpoint.ErrNoCheckpoint):
		if rep.BaseGC > 0 {
			// The WAL was truncated at a checkpoint, yet the salvaged prefix
			// holds none: the anchor record itself fell past the torn tail.
			// Nothing below BaseGC survives, so there is no resume point.
			return out, fmt.Errorf("super: log truncated at counter %d but no checkpoint salvaged — unrecoverable", rep.BaseGC)
		}
		out.FallbackZero = true
	default:
		return out, fmt.Errorf("super: %w", err)
	}
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.IncRecovery()
		if out.FallbackZero {
			s.cfg.Metrics.IncFallback()
		}
	}
	if s.cfg.Restart != nil {
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.IncRestart()
		}
		if err := s.cfg.Restart(rec); err != nil {
			return out, fmt.Errorf("super: restart: %w", err)
		}
	}
	out.RecoverLatency = time.Since(t0)
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.ObserveMTTR(out.RecoverLatency)
	}
	return out, nil
}
