package super

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/tracelog"
)

// startFrozenVM starts a recording VM that fail-stops in place at counter
// freezeAt: the event observer blocks forever inside the GC-critical section,
// freezing every thread and the progress counters with it. The VM's worker
// goroutine deliberately leaks — exactly what a crashed process leaves behind.
func startFrozenVM(t *testing.T, walPath string, freezeAt ids.GCount, withCkpt bool) *core.VM {
	t.Helper()
	vm, err := core.NewVM(core.Config{
		ID:   1,
		Mode: ids.Record,
		EventObserver: func(_ ids.ThreadNum, gc ids.GCount) {
			if gc >= freezeAt {
				select {}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.EnableWAL(walPath, tracelog.WALOptions{SyncEvery: 1}); err != nil {
		t.Fatal(err)
	}
	vm.Start(func(main *core.Thread) {
		var x core.SharedInt
		for i := 0; ; i++ {
			x.Set(main, x.Get(main)+1)
			if withCkpt && i%10 == 9 {
				checkpoint.Take(main, func() []byte { return []byte("state") })
			}
		}
	})
	return vm
}

func testConfig(walPath string, m *obs.Metrics) Config {
	return Config{
		WALPath:   walPath,
		Heartbeat: time.Millisecond,
		FailAfter: 40 * time.Millisecond,
		Metrics:   m,
	}
}

func TestCleanStopReportsNothing(t *testing.T) {
	vm, err := core.NewVM(core.Config{ID: 1, Mode: ids.Record})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "clean.wal")
	if err := vm.EnableWAL(path, tracelog.WALOptions{}); err != nil {
		t.Fatal(err)
	}
	vm.Start(func(main *core.Thread) {
		var x core.SharedInt
		for i := 0; i < 20; i++ {
			x.Set(main, x.Get(main)+1)
		}
	})
	m := &obs.Metrics{}
	sup := Watch(vm, testConfig(path, m))
	vm.Wait()
	sup.Stop()
	sup.Stop() // idempotent
	out, err := sup.Wait()
	if out != nil || err != nil {
		t.Fatalf("clean stop: outcome=%+v err=%v, want nil/nil", out, err)
	}
	if s := m.Snapshot(); s.Recovery.Recoveries != 0 {
		t.Fatalf("clean stop counted a recovery: %+v", s.Recovery)
	}
}

func TestDetectsFreezeAndAnchorsOnCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	vm := startFrozenVM(t, path, 60, true)
	m := &obs.Metrics{}
	var restarted *Recovery
	cfg := testConfig(path, m)
	cfg.Restart = func(r *Recovery) error {
		restarted = r
		return nil
	}
	sup := Watch(vm, cfg)
	out, err := sup.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !out.Detected {
		t.Fatal("freeze not detected")
	}
	if out.DetectLatency < cfg.FailAfter {
		t.Fatalf("DetectLatency %v below FailAfter %v", out.DetectLatency, cfg.FailAfter)
	}
	if out.FallbackZero {
		t.Fatal("fell back to zero despite recorded checkpoints")
	}
	if out.Recovery == nil || out.Recovery.Checkpoint == nil {
		t.Fatal("no checkpoint anchor prepared")
	}
	if restarted == nil || restarted != out.Recovery {
		t.Fatal("restart callback did not receive the prepared recovery")
	}
	if out.LastTotal == 0 {
		t.Fatal("LastTotal empty — detection saw no progress at all")
	}
	s := m.Snapshot()
	if s.Recovery.Recoveries != 1 || s.Recovery.Restarts != 1 || s.Recovery.Fallbacks != 0 {
		t.Fatalf("counters: %+v", s.Recovery)
	}
	if s.MTTR.Count != 1 {
		t.Fatalf("MTTR observations = %d, want 1", s.MTTR.Count)
	}

	// The salvaged set replays to the crash point.
	rep, err := core.NewVM(core.Config{
		ID: 1, Mode: ids.Replay,
		ReplayLogs:   out.Recovery.Logs,
		Resume:       &out.Recovery.Checkpoint.Resume,
		StopAtLogEnd: true,
		StallTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("replay from salvage: %v", err)
	}
	rep.Start(func(main *core.Thread) {
		var x core.SharedInt
		for i := 0; ; i++ {
			x.Set(main, x.Get(main)+1)
			if i%10 == 9 {
				checkpoint.Take(main, func() []byte { return []byte("state") })
			}
		}
	})
	rep.Wait()
}

func TestFallsBackToZeroWithoutCheckpoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	vm := startFrozenVM(t, path, 30, false)
	m := &obs.Metrics{}
	sup := Watch(vm, testConfig(path, m))
	out, err := sup.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !out.Detected || !out.FallbackZero {
		t.Fatalf("outcome %+v, want detected fallback-to-zero", out)
	}
	if out.Recovery.Checkpoint != nil {
		t.Fatal("fallback outcome carries a checkpoint")
	}
	if s := m.Snapshot(); s.Recovery.Fallbacks != 1 {
		t.Fatalf("fallback not counted: %+v", s.Recovery)
	}
}

// A truncated WAL whose anchor checkpoint did not survive (here: a compacted
// image hand-built without one) has no resume point at all — the supervisor
// must refuse rather than prepare an unreplayable restart.
func TestTruncatedLogWithoutAnchorIsUnrecoverable(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "orphan.wal")
	w, err := tracelog.CreateWAL(orphan, tracelog.WALOptions{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := tracelog.NewSet()
	if err := s.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	s.Schedule.Append(&tracelog.VMMeta{VM: 1, World: ids.OpenWorld})
	s.Schedule.Append(&tracelog.TruncationEntry{BaseGC: 5})
	s.Schedule.Append(&tracelog.Interval{Thread: 0, First: 5, Last: 9})
	if err := s.SyncWAL(); err != nil {
		t.Fatal(err)
	}

	vm := startFrozenVM(t, filepath.Join(dir, "live.wal"), 30, false)
	cfg := testConfig(orphan, &obs.Metrics{})
	sup := Watch(vm, cfg)
	out, err := sup.Wait()
	if err == nil || !strings.Contains(err.Error(), "unrecoverable") {
		t.Fatalf("Wait err = %v, want unrecoverable-truncation error", err)
	}
	if out == nil || !out.Detected {
		t.Fatal("outcome should still report detection")
	}
}

func TestRestartErrorSurfaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	vm := startFrozenVM(t, path, 30, true)
	cfg := testConfig(path, &obs.Metrics{})
	cfg.Restart = func(*Recovery) error { return errRestart }
	sup := Watch(vm, cfg)
	_, err := sup.Wait()
	if err == nil || !strings.Contains(err.Error(), "restart") {
		t.Fatalf("Wait err = %v, want restart failure", err)
	}
}

var errRestart = &restartErr{}

type restartErr struct{}

func (*restartErr) Error() string { return "injected restart failure" }
