package super

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/recline"
	"repro/internal/tracelog"
)

// Lifecycle races, meant to run under -race with GOMAXPROCS=4: Stop during an
// in-flight recovery, Wait after Stop from several goroutines, and a
// false-positive detection whose salvage races the live VM's own WAL appends
// and checkpoint-anchored truncations.

// Stop issued while recover() is blocked inside the restart callback must not
// deadlock or discard the episode: Wait still returns the detection outcome.
func TestStopDuringInFlightRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	vm := startFrozenVM(t, path, 60, true)
	entered := make(chan struct{})
	release := make(chan struct{})
	cfg := testConfig(path, nil)
	cfg.Restart = func(r *Recovery) error {
		close(entered)
		<-release
		return nil
	}
	sup := Watch(vm, cfg)
	<-entered
	// Detection already fired; Stop must be a harmless no-op, not a hang.
	sup.Stop()
	sup.Stop()
	close(release)
	out, err := sup.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if out == nil || !out.Detected {
		t.Fatalf("outcome = %+v, want the detection episode", out)
	}
}

// Wait after a clean Stop returns (nil, nil) to every concurrent caller.
func TestConcurrentWaitAfterStop(t *testing.T) {
	vm, err := core.NewVM(core.Config{ID: 1, Mode: ids.Record})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idle.wal")
	if err := vm.EnableWAL(path, tracelog.WALOptions{}); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(path, nil)
	cfg.FailAfter = 10 * time.Second // idle counters must not read as a crash
	sup := Watch(vm, cfg)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if out, err := sup.Wait(); out != nil || err != nil {
				t.Errorf("Wait = %+v, %v, want nil, nil", out, err)
			}
		}()
	}
	var stops sync.WaitGroup
	for i := 0; i < 3; i++ {
		stops.Add(1)
		go func() {
			defer stops.Done()
			sup.Stop()
		}()
	}
	stops.Wait()
	wg.Wait()
	vm.Close()
}

// A false-positive detection (the VM pauses longer than FailAfter, then keeps
// going) makes recover() salvage a WAL the live VM is still appending to and
// truncating. The salvage must hand the restart callback a valid replayable
// set — never a panic or a torn read — even while TruncateWAL atomically
// replaces the file underneath it.
func TestRecoverRacesLiveTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.wal")
	paused := false
	vm, err := core.NewVM(core.Config{
		ID:   1,
		Mode: ids.Record,
		EventObserver: func(_ ids.ThreadNum, gc ids.GCount) {
			// One long pause, then full speed: the supervisor declares
			// fail-stop during the pause and recovers while the VM lives on.
			if gc == 120 && !paused {
				paused = true
				time.Sleep(150 * time.Millisecond)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.EnableWAL(path, tracelog.WALOptions{SyncEvery: 1}); err != nil {
		t.Fatal(err)
	}
	vm.Start(func(main *core.Thread) {
		var x core.SharedInt
		for i := 0; i < 3000; i++ {
			x.Set(main, x.Get(main)+1)
			if i%10 == 9 {
				checkpoint.Take(main, func() []byte { return []byte("state") })
				vm.TruncateWAL(2) //nolint:errcheck
			}
		}
	})
	cfg := testConfig(path, nil)
	cfg.Heartbeat = time.Millisecond
	cfg.FailAfter = 30 * time.Millisecond
	var salvaged *Recovery
	cfg.Restart = func(r *Recovery) error {
		salvaged = r
		return nil
	}
	sup := Watch(vm, cfg)
	out, err := sup.Wait()
	vm.Wait()
	vm.Close()
	if err != nil {
		// A clean error (e.g. the salvage landed between a truncation's
		// rename and its anchor) is acceptable; a panic or race is not.
		t.Logf("recover returned cleanly with: %v", err)
		return
	}
	if !out.Detected {
		t.Fatalf("pause was not detected (outcome %+v)", out)
	}
	if salvaged == nil || salvaged.Logs == nil || salvaged.Report == nil {
		t.Fatalf("restart callback got no salvaged set: %+v", salvaged)
	}
	if _, err := tracelog.BuildScheduleIndex(salvaged.Logs.Schedule); err != nil {
		t.Fatalf("salvaged schedule does not index: %v", err)
	}
}

// Group supervisor lifecycle: Stop before any episode returns the empty
// outcome to every waiter, repeatedly and concurrently.
func TestGroupStopAndConcurrentWait(t *testing.T) {
	dir := t.TempDir()
	var members []GroupMember
	var vms []*core.VM
	for i := 0; i < 2; i++ {
		vm, err := core.NewVM(core.Config{ID: ids.DJVMID(i + 1), Mode: ids.Record})
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, "m.wal")
		if err := vm.EnableWAL(p, tracelog.WALOptions{}); err != nil {
			t.Fatal(err)
		}
		members = append(members, GroupMember{Name: "m", VM: vm, WALPath: p})
		vms = append(vms, vm)
		dir = t.TempDir()
	}
	g := WatchGroup(members, GroupConfig{
		FailAfter:   10 * time.Second,
		Coordinator: recline.NewCoordinator(1, 2),
	})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := g.Wait()
			if err != nil {
				t.Errorf("Wait: %v", err)
			}
			if out == nil || out.Detected || len(out.Episodes) != 0 {
				t.Errorf("outcome = %+v, want empty", out)
			}
		}()
	}
	g.Stop()
	g.Stop()
	wg.Wait()
	for _, vm := range vms {
		vm.Close()
	}
}
