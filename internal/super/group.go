package super

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/recline"
	"repro/internal/tracelog"
)

// Group supervision: the multi-node generalization of Watch. A
// GroupSupervisor polls every member's progress counters, declares fail-stop
// of any subset whose counters freeze outside the coordinator's barrier,
// salvages the crashed members' WALs, solves the set's latest complete
// recovery line (recline.Solve), and restarts each crashed member from its
// line anchor — while the surviving members, released from the barrier by the
// member's removal, keep running and keep stamping epochs with the reduced
// membership. Later crashes open further episodes against the updated set.

// GroupMember names one supervised member of a coordinated group.
type GroupMember struct {
	// Name is the member's display name (its netsim host, typically).
	Name string
	// VM is the member's recording VM, polled for progress.
	VM *core.VM
	// WALPath is the member's write-ahead log, repaired on detection.
	WALPath string
}

// GroupConfig tunes group detection and recovery.
type GroupConfig struct {
	// Heartbeat is the progress-poll interval. Zero means 2ms.
	Heartbeat time.Duration
	// FailAfter is the no-progress window after which a member is declared
	// failed. Zero means 250ms. Members parked in the coordinator's barrier
	// are frozen but alive and are never declared failed.
	FailAfter time.Duration
	// Metrics receives the supervisor's recovery counters and MTTR
	// observations. Nil means don't report.
	Metrics *obs.Metrics
	// Coordinator is the group's checkpoint coordinator. The supervisor
	// consults it to tell barrier-parked members from crashed ones and
	// removes crashed members from it so survivors resume. Required.
	Coordinator *recline.Coordinator
	// Restart, when set, is invoked once per crashed member with the
	// prepared recovery; it should rebuild the member from the anchor
	// checkpoint and drive it to the end of its salvaged log.
	Restart func(member int, rec *MemberRecovery) error
}

// MemberRecovery is one crashed member's prepared restart.
type MemberRecovery struct {
	// Member is the member's index in the supervised slice; Name its name.
	Member int
	Name   string
	// Logs is the replayable set salvaged from the member's WAL; Report
	// describes the salvage.
	Logs   *tracelog.Set
	Report *tracelog.RecoveryReport
	// Checkpoint is the restart anchor, nil when recovery falls back to
	// replay-from-zero.
	Checkpoint *checkpoint.Snapshot
	// OnLine reports that the anchor is the member's checkpoint on the
	// episode's recovery line (false: no complete line covered the member
	// and the latest salvaged checkpoint was used instead).
	OnLine bool
	// FallbackZero reports a restart from the beginning of the log.
	FallbackZero bool
}

// GroupEpisode is one detection episode: the members declared failed
// together, the solved line, and their recoveries.
type GroupEpisode struct {
	// Crashed lists the failed members' indexes, ascending.
	Crashed []int
	// Solution is the full recovery-line solve over the set at detection
	// time; Line is its chosen line (nil when no complete line survived).
	Solution *recline.Solution
	Line     *recline.Line
	// Recoveries holds one prepared restart per crashed member, in Crashed
	// order.
	Recoveries []*MemberRecovery
	// DetectLatency is the longest freeze among the declared members;
	// RecoverLatency spans detection to the last restart returning.
	DetectLatency  time.Duration
	RecoverLatency time.Duration
}

// GroupOutcome aggregates a group supervision run.
type GroupOutcome struct {
	// Detected reports whether any episode fired.
	Detected bool
	// Episodes lists the detection episodes in order.
	Episodes []*GroupEpisode
}

// GroupSupervisor watches N member VMs. Create with WatchGroup; it exits
// after Stop, after an episode fails, or once every member has either
// completed cleanly (MarkDone) or crashed and been recovered.
type GroupSupervisor struct {
	cfg     GroupConfig
	members []GroupMember
	stop    chan struct{}
	done    chan struct{}

	mu   sync.Mutex
	mark map[int]bool // members marked done by MarkDone

	outcome *GroupOutcome
	err     error
}

// WatchGroup starts supervising the members' progress.
func WatchGroup(members []GroupMember, cfg GroupConfig) *GroupSupervisor {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 250 * time.Millisecond
	}
	g := &GroupSupervisor{
		cfg:     cfg,
		members: members,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		mark:    make(map[int]bool),
	}
	go g.run()
	return g
}

// MarkDone tells the supervisor the member completed cleanly: its counters
// may freeze without being declared failed. Call it from the member's own
// workload just before it returns.
func (g *GroupSupervisor) MarkDone(member int) {
	g.mu.Lock()
	g.mark[member] = true
	g.mu.Unlock()
}

// Stop stands the supervisor down. Safe to call more than once.
func (g *GroupSupervisor) Stop() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
}

// Wait blocks until supervision ends and returns the aggregated outcome. An
// error means an episode's salvage or restart failed; the outcome still
// reports the episodes that completed.
func (g *GroupSupervisor) Wait() (*GroupOutcome, error) {
	<-g.done
	return g.outcome, g.err
}

// memberState is the run loop's per-member bookkeeping.
type memberState struct {
	last      uint64
	lastMove  time.Time
	recovered bool
	salvaged  *tracelog.Set // set salvaged when the member crashed
}

func (g *GroupSupervisor) run() {
	defer close(g.done)
	g.outcome = &GroupOutcome{}
	tick := time.NewTicker(g.cfg.Heartbeat)
	defer tick.Stop()
	states := make([]memberState, len(g.members))
	now := time.Now()
	for i, m := range g.members {
		states[i] = memberState{last: m.VM.Metrics().TotalEvents(), lastMove: now}
	}
	for {
		select {
		case <-g.stop:
			return
		case <-tick.C:
		}
		waiting := g.cfg.Coordinator.Waiting()
		g.mu.Lock()
		marked := make(map[int]bool, len(g.mark))
		for i := range g.mark {
			marked[i] = true
		}
		g.mu.Unlock()

		var crashed []int
		var maxFrozen time.Duration
		live := 0
		for i, m := range g.members {
			if states[i].recovered || marked[i] {
				continue
			}
			live++
			cur := m.VM.Metrics().TotalEvents()
			if cur != states[i].last {
				states[i].last, states[i].lastMove = cur, time.Now()
				continue
			}
			if waiting[m.VM.ID()] {
				// Parked in the coordinator barrier: frozen but alive.
				// Reset the clock so barrier time never counts toward the
				// member's own fail window.
				states[i].lastMove = time.Now()
				continue
			}
			if frozen := time.Since(states[i].lastMove); frozen >= g.cfg.FailAfter {
				crashed = append(crashed, i)
				if frozen > maxFrozen {
					maxFrozen = frozen
				}
			}
		}
		if live == 0 {
			return
		}
		if len(crashed) == 0 {
			continue
		}
		ep, err := g.episode(crashed, maxFrozen, states)
		g.outcome.Detected = true
		g.outcome.Episodes = append(g.outcome.Episodes, ep)
		if err != nil {
			g.err = err
			return
		}
		for _, i := range crashed {
			states[i].recovered = true
		}
	}
}

// episode runs one detect-salvage-solve-restart sequence for the members
// declared failed together.
func (g *GroupSupervisor) episode(crashed []int, frozen time.Duration, states []memberState) (*GroupEpisode, error) {
	t0 := time.Now()
	ep := &GroupEpisode{Crashed: crashed, DetectLatency: frozen}
	isCrashed := make(map[int]bool, len(crashed))
	for _, i := range crashed {
		isCrashed[i] = true
	}

	// Salvage the crashed members' WALs.
	reports := make(map[int]*tracelog.RecoveryReport, len(crashed))
	for _, i := range crashed {
		logs, rep, err := tracelog.RecoverFile(g.members[i].WALPath)
		if err != nil {
			return ep, fmt.Errorf("super: member %s: wal repair: %w", g.members[i].Name, err)
		}
		states[i].salvaged = logs
		reports[i] = rep
	}

	// Solve the recovery line over every member's best available evidence:
	// the fresh salvage for the members of this episode, earlier salvages
	// for previously recovered members, and the live in-memory logs of the
	// survivors (parked at the barrier, hence quiescent).
	var sets []*tracelog.Set
	for i := range g.members {
		switch {
		case states[i].salvaged != nil:
			sets = append(sets, states[i].salvaged)
		default:
			sets = append(sets, g.members[i].VM.Logs())
		}
	}
	sol, err := recline.Solve(sets)
	if err != nil {
		return ep, fmt.Errorf("super: recovery line: %w", err)
	}
	ep.Solution, ep.Line = sol, sol.Line
	if g.cfg.Metrics != nil {
		for n := sol.Fallbacks(); n > 0; n-- {
			g.cfg.Metrics.IncLineFallback()
		}
	}

	// Release the survivors: future rounds no longer wait for the dead.
	for _, i := range crashed {
		g.cfg.Coordinator.Remove(g.members[i].VM.ID())
	}

	// Anchor and restart each crashed member.
	for _, i := range crashed {
		rec := &MemberRecovery{
			Member: i,
			Name:   g.members[i].Name,
			Logs:   states[i].salvaged,
			Report: reports[i],
		}
		ep.Recoveries = append(ep.Recoveries, rec)
		vmID := g.members[i].VM.ID()
		if sol.Line != nil {
			if anchor, ok := sol.Line.Anchors[vmID]; ok {
				cp, err := checkpoint.At(rec.Logs, anchor)
				if err != nil {
					return ep, fmt.Errorf("super: member %s: line anchor %d: %w", rec.Name, anchor, err)
				}
				rec.Checkpoint, rec.OnLine = cp, true
			}
		}
		if rec.Checkpoint == nil {
			// No complete line covers the member: fall back to the latest
			// salvaged checkpoint, exactly like single-VM supervision.
			cp, err := checkpoint.Latest(rec.Logs)
			switch {
			case err == nil:
				rec.Checkpoint = cp
			case errors.Is(err, checkpoint.ErrNoCheckpoint):
				if rec.Report.BaseGC > 0 {
					return ep, fmt.Errorf("super: member %s: log truncated at counter %d but no checkpoint salvaged — unrecoverable", rec.Name, rec.Report.BaseGC)
				}
				rec.FallbackZero = true
			default:
				return ep, fmt.Errorf("super: member %s: %w", rec.Name, err)
			}
		}
		if g.cfg.Metrics != nil {
			g.cfg.Metrics.IncRecovery()
			if rec.FallbackZero {
				g.cfg.Metrics.IncFallback()
			}
		}
		if g.cfg.Restart != nil {
			if g.cfg.Metrics != nil {
				g.cfg.Metrics.IncRestart()
			}
			if err := g.cfg.Restart(i, rec); err != nil {
				return ep, fmt.Errorf("super: member %s: restart: %w", rec.Name, err)
			}
		}
	}
	ep.RecoverLatency = time.Since(t0)
	if g.cfg.Metrics != nil {
		g.cfg.Metrics.ObserveMTTR(ep.RecoverLatency)
	}
	return ep, nil
}
