package djenv

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
)

func newVM(t *testing.T, cfg core.Config) *core.VM {
	t.Helper()
	vm, err := core.NewVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

// runEnvApp draws clock and random values from several threads and returns
// the per-thread observation traces.
func runEnvApp(t *testing.T, cfg core.Config) ([][]int64, *core.VM) {
	t.Helper()
	vm := newVM(t, cfg)
	src := New(vm)
	const threads, draws = 3, 20
	traces := make([][]int64, threads)
	vm.Start(func(main *core.Thread) {
		done := make(chan struct{}, threads)
		for i := 0; i < threads; i++ {
			i := i
			main.Spawn(func(th *core.Thread) {
				defer func() { done <- struct{}{} }()
				for j := 0; j < draws; j++ {
					switch j % 3 {
					case 0:
						traces[i] = append(traces[i], src.Now(th))
					case 1:
						traces[i] = append(traces[i], int64(src.Uint64(th)))
					default:
						traces[i] = append(traces[i], int64(src.Intn(th, 1000)))
					}
				}
			})
		}
		for i := 0; i < threads; i++ {
			<-done
		}
	})
	vm.Wait()
	vm.Close()
	return traces, vm
}

func TestEnvRecordReplay(t *testing.T) {
	recTraces, recVM := runEnvApp(t, core.Config{ID: 1, Mode: ids.Record, RecordJitter: 4})
	repTraces, _ := runEnvApp(t, core.Config{ID: 1, Mode: ids.Replay, ReplayLogs: recVM.Logs()})
	for i := range recTraces {
		if len(recTraces[i]) != len(repTraces[i]) {
			t.Fatalf("thread %d trace length differs", i)
		}
		for j := range recTraces[i] {
			if recTraces[i][j] != repTraces[i][j] {
				t.Fatalf("thread %d draw %d: replay %d, record %d",
					i, j, repTraces[i][j], recTraces[i][j])
			}
		}
	}
}

func TestEnvValuesDifferAcrossRecordRuns(t *testing.T) {
	a, _ := runEnvApp(t, core.Config{ID: 2, Mode: ids.Record})
	b, _ := runEnvApp(t, core.Config{ID: 2, Mode: ids.Record})
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("two record runs drew identical environmental values")
	}
}

func TestEnvPassthroughDoesNotLog(t *testing.T) {
	_, vm := runEnvApp(t, core.Config{ID: 3, Mode: ids.Passthrough})
	if vm.Logs() != nil {
		t.Error("passthrough run produced logs")
	}
}

func TestEnvOpMismatchDiverges(t *testing.T) {
	vm := newVM(t, core.Config{ID: 4, Mode: ids.Record})
	src := New(vm)
	vm.Start(func(main *core.Thread) {
		src.Now(main)
	})
	vm.Wait()
	vm.Close()

	rep := newVM(t, core.Config{ID: 4, Mode: ids.Replay, ReplayLogs: vm.Logs()})
	repSrc := New(rep)
	got := make(chan any, 1)
	rep.Start(func(main *core.Thread) {
		defer func() { got <- recover() }()
		repSrc.Uint64(main) // recorded as "now", replayed as "rand"
	})
	r := <-got
	if _, ok := r.(*core.DivergenceError); !ok {
		t.Fatalf("recovered %v (%T), want *core.DivergenceError", r, r)
	}
}

func TestEnvBeyondRecordedDiverges(t *testing.T) {
	vm := newVM(t, core.Config{ID: 5, Mode: ids.Record})
	src := New(vm)
	vm.Start(func(main *core.Thread) { src.Now(main) })
	vm.Wait()
	vm.Close()

	rep := newVM(t, core.Config{ID: 5, Mode: ids.Replay, ReplayLogs: vm.Logs()})
	repSrc := New(rep)
	got := make(chan any, 1)
	rep.Start(func(main *core.Thread) {
		defer func() { got <- recover() }()
		repSrc.Now(main)
		repSrc.Now(main) // one draw too many
	})
	r := <-got
	if _, ok := r.(*core.DivergenceError); !ok {
		t.Fatalf("recovered %v (%T), want *core.DivergenceError", r, r)
	}
}

func TestIntnBounds(t *testing.T) {
	vm := newVM(t, core.Config{ID: 6, Mode: ids.Record})
	src := New(vm)
	vm.Start(func(main *core.Thread) {
		for i := 0; i < 200; i++ {
			if v := src.Intn(main, 7); v < 0 || v >= 7 {
				t.Errorf("Intn(7) = %d", v)
			}
		}
	})
	vm.Wait()
	vm.Close()

	vm2 := newVM(t, core.Config{ID: 7, Mode: ids.Passthrough})
	src2 := New(vm2)
	got := make(chan any, 1)
	vm2.Start(func(main *core.Thread) {
		defer func() { got <- recover() }()
		src2.Intn(main, 0)
	})
	if r := <-got; r == nil {
		t.Error("Intn(0) did not panic")
	}
	vm2.Wait()
}
