// Package djenv extends DJVM record/replay to environmental
// nondeterminism: wall-clock reads and random-number draws. The paper's
// framework treats as a critical event anything "whose execution order can
// affect the execution behavior of the application" (§2.1); clock and
// randomness queries are nondeterministic *inputs* rather than orderings, so
// — like open-world network input (§5) — their record-phase values are
// logged in full and served back from the log during replay.
//
// A Source is bound to one DJVM. Each query is one critical event whose
// value is keyed by the thread's network-event numbering, giving replay the
// same lookup discipline the socket layers use.
package djenv

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/tracelog"
)

// Source provides recorded/replayed environmental values for one DJVM.
type Source struct {
	vm *core.VM

	mu  sync.Mutex
	rng *rand.Rand
}

// New creates an environment source for vm. In record and passthrough modes
// clock reads use the real clock and random draws use a time-seeded
// generator; in replay mode every value comes from the log.
func New(vm *core.VM) *Source {
	return &Source{
		vm:  vm,
		rng: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Now returns the current wall-clock time in nanoseconds — the analog of
// System.currentTimeMillis. One critical event.
func (s *Source) Now(t *core.Thread) int64 {
	return s.query(t, "now", func() uint64 { return uint64(time.Now().UnixNano()) }, true)
}

// Uint64 returns a random value. One critical event.
func (s *Source) Uint64(t *core.Thread) uint64 {
	return uint64(s.query(t, "rand", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.rng.Uint64()
	}, false))
}

// Intn returns a uniform value in [0, n). One critical event.
func (s *Source) Intn(t *core.Thread, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("djenv: Intn(%d)", n))
	}
	return int(s.Uint64(t) % uint64(n))
}

// query executes one environment critical event. signed only affects the
// caller's interpretation; values travel as uint64.
func (s *Source) query(t *core.Thread, op string, sample func() uint64, signed bool) int64 {
	vm := s.vm
	if vm.Mode() == ids.Passthrough {
		return int64(sample())
	}
	eventID := t.EventID(t.NextEventNum())

	var out uint64
	switch vm.Mode() {
	case ids.Record:
		t.CriticalKind(obs.KindEnv, func(ids.GCount) {
			out = sample()
			vm.Logs().Network.Append(&tracelog.EnvEntry{
				EventID: eventID,
				Op:      op,
				Value:   out,
			})
		})
	case ids.Replay:
		entry, ok := vm.NetworkIndex().Envs[eventID]
		t.CriticalKind(obs.KindEnv, func(ids.GCount) {})
		if !ok {
			panic(&core.DivergenceError{
				VM:     vm.ID(),
				Thread: t.Num(),
				Msg:    fmt.Sprintf("environment event %v (%s) has no recorded value", eventID, op),
			})
		}
		if entry.Op != op {
			panic(&core.DivergenceError{
				VM:     vm.ID(),
				Thread: t.Num(),
				Msg:    fmt.Sprintf("environment event %v recorded as %q, replayed as %q", eventID, entry.Op, op),
			})
		}
		out = entry.Value
	}
	return int64(out)
}
